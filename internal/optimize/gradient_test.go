package optimize

import (
	"math"
	"testing"
)

// quadratic is a separable convex bowl with minimum at c.
func quadratic(c []float64) FuncGrad {
	return func(x, grad []float64) float64 {
		var f float64
		for j := range x {
			d := x[j] - c[j]
			f += d * d
			grad[j] = 2 * d
		}
		return f
	}
}

func TestAdamQuadratic(t *testing.T) {
	c := []float64{1.5, -2, 0.25}
	res := Adam(quadratic(c), make([]float64, 3), AdamOptions{MaxIter: 2000, Step: 0.1})
	if !res.Converged {
		t.Errorf("Adam did not converge: %+v", res)
	}
	for j := range c {
		if math.Abs(res.X[j]-c[j]) > 1e-4 {
			t.Errorf("x[%d] = %v, want %v", j, res.X[j], c[j])
		}
	}
	if res.Evals != res.Iters {
		t.Errorf("Evals %d != Iters %d (one gradient evaluation per iteration)", res.Evals, res.Iters)
	}
}

func TestGradientDescentQuadratic(t *testing.T) {
	c := []float64{-0.5, 3}
	res := GradientDescent(quadratic(c), make([]float64, 2), GDOptions{MaxIter: 5000, Step: 0.1})
	if !res.Converged {
		t.Errorf("GD did not converge: %+v", res)
	}
	for j := range c {
		if math.Abs(res.X[j]-c[j]) > 1e-4 {
			t.Errorf("x[%d] = %v, want %v", j, res.X[j], c[j])
		}
	}
}

// TestAdamReturnsBestIterate pins the best-seen contract: on an
// objective where large steps overshoot, the reported optimum is never
// worse than any visited iterate.
func TestAdamReturnsBestIterate(t *testing.T) {
	var visited []float64
	f := func(x, grad []float64) float64 {
		v := x[0] * x[0]
		grad[0] = 2 * x[0]
		visited = append(visited, v)
		return v
	}
	res := Adam(f, []float64{2}, AdamOptions{MaxIter: 25, Step: 1.5})
	for _, v := range visited {
		if res.F > v {
			t.Fatalf("reported F=%v worse than visited %v", res.F, v)
		}
	}
}

func TestGradientOptimizerDefaults(t *testing.T) {
	// Zero-valued options must select usable defaults and terminate.
	res := Adam(quadratic([]float64{1}), []float64{0}, AdamOptions{})
	if res.Iters == 0 || res.Evals == 0 {
		t.Errorf("Adam with default options did not run: %+v", res)
	}
	gd := GradientDescent(quadratic([]float64{1}), []float64{0}, GDOptions{})
	if gd.Iters == 0 || gd.Evals == 0 {
		t.Errorf("GD with default options did not run: %+v", gd)
	}
}

func TestCountingGrad(t *testing.T) {
	cf := &CountingGrad{F: quadratic([]float64{0})}
	g := make([]float64, 1)
	for i := 0; i < 5; i++ {
		cf.Eval([]float64{1}, g)
	}
	if cf.Calls != 5 {
		t.Errorf("Calls = %d, want 5", cf.Calls)
	}
}
