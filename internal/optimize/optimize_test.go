package optimize

import (
	"context"
	"math"
	"testing"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func TestNelderMeadQuadratic(t *testing.T) {
	res := NelderMead(func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1) + 5
	}, []float64{0, 0}, NMOptions{})
	if !res.Converged {
		t.Error("did not converge on a quadratic")
	}
	if math.Abs(res.X[0]-3) > 1e-3 || math.Abs(res.X[1]+1) > 1e-3 {
		t.Errorf("argmin %v, want (3,−1)", res.X)
	}
	if math.Abs(res.F-5) > 1e-6 {
		t.Errorf("min %v, want 5", res.F)
	}
	if res.Evals < 3 {
		t.Errorf("implausible eval count %d", res.Evals)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	res := NelderMead(func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}, []float64{-1.2, 1}, NMOptions{MaxIter: 5000, TolF: 1e-12, InitialStep: 0.5})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("Rosenbrock argmin %v, want (1,1)", res.X)
	}
}

func TestNelderMeadHighDim(t *testing.T) {
	x0 := make([]float64, 8)
	for i := range x0 {
		x0[i] = 1.5
	}
	res := NelderMead(sphere, x0, NMOptions{MaxIter: 20000, TolF: 1e-14})
	if res.F > 1e-6 {
		t.Errorf("8-dim sphere min %v", res.F)
	}
}

func TestNelderMeadEvalBudget(t *testing.T) {
	res := NelderMead(sphere, []float64{5, 5, 5}, NMOptions{MaxEvals: 20})
	if res.Evals > 25 { // small overshoot allowed within one iteration
		t.Errorf("budget 20 but used %d evals", res.Evals)
	}
	if res.F >= sphere([]float64{5, 5, 5}) {
		t.Error("no improvement within budget")
	}
}

func TestNelderMeadZeroDim(t *testing.T) {
	res := NelderMead(func([]float64) float64 { return 7 }, nil, NMOptions{})
	if res.F != 7 || !res.Converged {
		t.Errorf("zero-dim result %+v", res)
	}
}

func TestSPSADescendsQuadratic(t *testing.T) {
	x0 := []float64{2, -3}
	res := SPSA(sphere, x0, SPSAOptions{Steps: 400, Seed: 7, A: 0.5})
	if res.F >= sphere(x0) {
		t.Errorf("SPSA did not descend: %v vs %v", res.F, sphere(x0))
	}
	if res.F > 0.5 {
		t.Errorf("SPSA final value %v too high", res.F)
	}
	if res.Evals != 2*400+1 {
		t.Errorf("evals = %d, want 801", res.Evals)
	}
}

func TestSPSADeterministicPerSeed(t *testing.T) {
	a := SPSA(sphere, []float64{1, 1}, SPSAOptions{Steps: 50, Seed: 3})
	b := SPSA(sphere, []float64{1, 1}, SPSAOptions{Steps: 50, Seed: 3})
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestCounting(t *testing.T) {
	c := &Counting{F: sphere}
	c.Eval([]float64{1})
	c.Eval([]float64{2})
	if c.Calls != 2 {
		t.Errorf("Calls = %d", c.Calls)
	}
}

func TestTQAInitSchedule(t *testing.T) {
	gamma, beta := TQAInit(4, 0.8)
	if len(gamma) != 4 || len(beta) != 4 {
		t.Fatal("wrong lengths")
	}
	for l := 0; l < 4; l++ {
		frac := (float64(l) + 0.5) / 4
		if math.Abs(gamma[l]-frac*0.8) > 1e-15 {
			t.Errorf("gamma[%d] = %v", l, gamma[l])
		}
		if math.Abs(beta[l]-(1-frac)*0.8) > 1e-15 {
			t.Errorf("beta[%d] = %v", l, beta[l])
		}
		// Ramp property: γ increases, β decreases.
		if l > 0 && (gamma[l] <= gamma[l-1] || beta[l] >= beta[l-1]) {
			t.Error("TQA ramp not monotone")
		}
	}
	if gamma[0]+beta[0] != 0.8 {
		t.Errorf("γ+β = %v, want dt", gamma[0]+beta[0])
	}
}

func TestSplitJoinAngles(t *testing.T) {
	g, b := []float64{1, 2}, []float64{3, 4}
	x := JoinAngles(g, b)
	g2, b2 := SplitAngles(x)
	if g2[0] != 1 || g2[1] != 2 || b2[0] != 3 || b2[1] != 4 {
		t.Errorf("round trip failed: %v %v", g2, b2)
	}
	defer func() {
		if recover() == nil {
			t.Error("odd split accepted")
		}
	}()
	SplitAngles([]float64{1, 2, 3})
}

// TestOptimizerCancellation pins the Options.Ctx contract across all
// four optimizers: a cancelled context stops the loop at the next
// iteration boundary, well short of the budget, and the best iterate
// seen so far is still returned.
func TestOptimizerCancellation(t *testing.T) {
	quadratic := func(x []float64) float64 { return (x[0] - 1) * (x[0] - 1) }
	quadGrad := func(x, g []float64) float64 {
		g[0] = 2 * (x[0] - 1)
		return (x[0] - 1) * (x[0] - 1)
	}
	x0 := []float64{5}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if res := NelderMead(quadratic, x0, NMOptions{MaxIter: 1000, Ctx: ctx}); res.Iters != 0 || res.X == nil {
		t.Errorf("NelderMead under cancelled ctx: %+v", res)
	}
	if res := Adam(quadGrad, x0, AdamOptions{MaxIter: 1000, Ctx: ctx}); res.Evals != 0 || res.X == nil {
		t.Errorf("Adam under cancelled ctx: %+v", res)
	}
	if res := GradientDescent(quadGrad, x0, GDOptions{MaxIter: 1000, Ctx: ctx}); res.Evals != 0 || res.X == nil {
		t.Errorf("GradientDescent under cancelled ctx: %+v", res)
	}
	if res := SPSA(quadratic, x0, SPSAOptions{Steps: 1000, Ctx: ctx}); res.Evals != 1 {
		// SPSA's final evaluation of the returned point still runs.
		t.Errorf("SPSA under cancelled ctx: %+v", res)
	}

	// Cancellation landing mid-run: cancel from inside the objective
	// after a fixed number of evaluations, deterministically.
	ctx2, cancel2 := context.WithCancel(context.Background())
	evals := 0
	counting := func(x, g []float64) float64 {
		evals++
		if evals == 7 {
			cancel2()
		}
		return quadGrad(x, g)
	}
	res := Adam(counting, x0, AdamOptions{MaxIter: 1000, Ctx: ctx2})
	if res.Evals != 7 {
		t.Errorf("Adam stopped after %d evals, want 7 (cancelled on the 7th)", res.Evals)
	}
	if res.Converged {
		t.Error("cancelled run reported Converged")
	}
}
