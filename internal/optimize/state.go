package optimize

import (
	"fmt"

	"qokit/internal/checkpoint"
)

// Checkpoint kind tags and per-kind payload versions. The frame
// container carries its own version; these cover the field layout.
const (
	adamStateKind    = "qokit/adam-state"
	gdStateKind      = "qokit/gd-state"
	adamStateVersion = 1
	gdStateVersion   = 1
)

// AdamState is the complete Adam trajectory state after a finished
// iteration: everything the update rule reads, plus the bookkeeping a
// resumed result must continue (best iterate, counters). Adam has no
// randomness, so this state fully determines the remaining trajectory
// — a resumed run is bit-identical to one that never stopped.
type AdamState struct {
	// X is the current iterate; M and V the first/second moments.
	X, M, V []float64
	// B1t and B2t are the accumulated bias-correction products
	// Beta1^Iter and Beta2^Iter.
	B1t, B2t float64
	// Iter counts completed iterations; the resumed loop continues at
	// this index.
	Iter int
	// BestX and BestF track the best iterate seen (Adam is not a
	// descent method; the last iterate may be worse).
	BestX []float64
	BestF float64
	// Evals is the objective-evaluation count so far.
	Evals int
}

func (st *AdamState) validate(dim int) error {
	if len(st.X) != dim || len(st.M) != dim || len(st.V) != dim || len(st.BestX) != dim {
		return fmt.Errorf("optimize: resume state dimensions (x=%d m=%d v=%d best=%d) do not match problem dimension %d",
			len(st.X), len(st.M), len(st.V), len(st.BestX), dim)
	}
	if st.Iter < 0 {
		return fmt.Errorf("optimize: resume state has negative iteration count %d", st.Iter)
	}
	return nil
}

// Encode serializes the state into a checkpoint payload.
func (st *AdamState) Encode() []byte {
	var e checkpoint.Encoder
	e.U32(adamStateVersion)
	e.F64s(st.X)
	e.F64s(st.M)
	e.F64s(st.V)
	e.F64(st.B1t)
	e.F64(st.B2t)
	e.Int(st.Iter)
	e.F64s(st.BestX)
	e.F64(st.BestF)
	e.Int(st.Evals)
	return e.Bytes()
}

// DecodeAdamState parses a payload produced by Encode.
func DecodeAdamState(payload []byte) (*AdamState, error) {
	d := checkpoint.NewDecoder(payload)
	if v := d.U32(); d.Err() == nil && v != adamStateVersion {
		return nil, fmt.Errorf("optimize: adam state version %d unsupported (want %d)", v, adamStateVersion)
	}
	st := &AdamState{
		X:   d.F64s(),
		M:   d.F64s(),
		V:   d.F64s(),
		B1t: d.F64(),
		B2t: d.F64(),
	}
	st.Iter = d.Int()
	st.BestX = d.F64s()
	st.BestF = d.F64()
	st.Evals = d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// SaveAdamState atomically writes the state to path.
func SaveAdamState(path string, st *AdamState) error {
	return checkpoint.WriteFile(path, adamStateKind, st.Encode())
}

// LoadAdamState reads a state written by SaveAdamState. A missing file
// surfaces as fs.ErrNotExist (callers treat it as "start fresh").
func LoadAdamState(path string) (*AdamState, error) {
	payload, err := checkpoint.ReadFile(path, adamStateKind)
	if err != nil {
		return nil, err
	}
	return DecodeAdamState(payload)
}

// GDState is the gradient-descent analogue of AdamState: the plain
// update keeps no moments, so the iterate, iteration index (which
// fixes the decayed step), best-so-far, and counters suffice.
type GDState struct {
	X     []float64
	Iter  int
	BestX []float64
	BestF float64
	Evals int
}

func (st *GDState) validate(dim int) error {
	if len(st.X) != dim || len(st.BestX) != dim {
		return fmt.Errorf("optimize: resume state dimensions (x=%d best=%d) do not match problem dimension %d",
			len(st.X), len(st.BestX), dim)
	}
	if st.Iter < 0 {
		return fmt.Errorf("optimize: resume state has negative iteration count %d", st.Iter)
	}
	return nil
}

// Encode serializes the state into a checkpoint payload.
func (st *GDState) Encode() []byte {
	var e checkpoint.Encoder
	e.U32(gdStateVersion)
	e.F64s(st.X)
	e.Int(st.Iter)
	e.F64s(st.BestX)
	e.F64(st.BestF)
	e.Int(st.Evals)
	return e.Bytes()
}

// DecodeGDState parses a payload produced by Encode.
func DecodeGDState(payload []byte) (*GDState, error) {
	d := checkpoint.NewDecoder(payload)
	if v := d.U32(); d.Err() == nil && v != gdStateVersion {
		return nil, fmt.Errorf("optimize: gd state version %d unsupported (want %d)", v, gdStateVersion)
	}
	st := &GDState{X: d.F64s()}
	st.Iter = d.Int()
	st.BestX = d.F64s()
	st.BestF = d.F64()
	st.Evals = d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// SaveGDState atomically writes the state to path.
func SaveGDState(path string, st *GDState) error {
	return checkpoint.WriteFile(path, gdStateKind, st.Encode())
}

// LoadGDState reads a state written by SaveGDState.
func LoadGDState(path string) (*GDState, error) {
	payload, err := checkpoint.ReadFile(path, gdStateKind)
	if err != nil {
		return nil, err
	}
	return DecodeGDState(payload)
}
