package optimize

import (
	"context"
	"math"
)

// FuncGrad is a value-and-gradient objective: it returns f(x) and
// writes ∇f(x) into grad (len(grad) == len(x)). The adjoint engine
// (internal/grad.Engine.FlatObjective) produces these for QAOA
// parameters at ≈ 4 simulations' cost regardless of dimension, which
// is what makes the gradient optimizers below asymptotically cheaper
// than Nelder–Mead at high depth.
type FuncGrad func(x, grad []float64) float64

// CountingGrad wraps a FuncGrad and counts evaluations; read Calls
// after optimizing to know the evaluation budget consumed. One call
// yields both the value and the full gradient.
type CountingGrad struct {
	F     FuncGrad
	Calls int
}

// Eval evaluates and counts.
func (c *CountingGrad) Eval(x, grad []float64) float64 {
	c.Calls++
	return c.F(x, grad)
}

// AdamOptions configures Adam. Zero values select the defaults noted
// per field.
type AdamOptions struct {
	// MaxIter bounds iterations, one gradient evaluation each
	// (default 200).
	MaxIter int
	// Step is the learning rate α (default 0.05 — sized for QAOA
	// angle landscapes, whose curvature is O(1) in radians).
	Step float64
	// Beta1 and Beta2 are the first/second-moment decay rates
	// (defaults 0.9 and 0.999).
	Beta1, Beta2 float64
	// Eps regularizes the second-moment denominator (default 1e-8).
	Eps float64
	// TolGrad stops when ‖∇f‖∞ falls below it (default 1e-6).
	TolGrad float64
	// Ctx, when non-nil, cancels the optimization: the loop stops at
	// the next iteration boundary and returns the best iterate so far.
	Ctx context.Context
	// Resume, when non-nil, restores a previous run's complete
	// optimizer state (iterate, moments, bias corrections, iteration
	// and evaluation counts, best-so-far) and continues from it. Adam
	// is deterministic, so a run checkpointed at iteration k and
	// resumed is bit-identical to one that never stopped.
	Resume *AdamState
	// Checkpoint, when non-nil, is called after every completed
	// iteration with a snapshot that fully determines the remaining
	// trajectory. The snapshot's slices are freshly allocated — the
	// callback may retain or serialize them. A non-nil return stops
	// the run and surfaces through AdamResult.Err (a failing objective
	// uses this to halt instead of iterating on garbage).
	Checkpoint func(*AdamState) error
}

// AdamResult reports the optimum found.
type AdamResult struct {
	// X and F are the best iterate seen, not necessarily the last
	// (Adam is not a descent method; late iterates can overshoot).
	X     []float64
	F     float64
	Evals int
	Iters int
	// Converged is true when TolGrad was reached before MaxIter.
	Converged bool
	// Err is non-nil when the run stopped early on a Checkpoint
	// callback error or an invalid Resume state; X/F still report the
	// best iterate seen before the stop.
	Err error
}

// Adam minimizes f with the Adam update (Kingma & Ba, arXiv:1412.6980)
// — the default gradient optimizer for adjoint-differentiated QAOA:
// robust to the ill-conditioned, oscillatory high-depth landscapes
// where plain gradient descent needs hand-tuned steps.
func Adam(f FuncGrad, x0 []float64, opt AdamOptions) AdamResult {
	dim := len(x0)
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	if opt.Step == 0 {
		opt.Step = 0.05
	}
	if opt.Beta1 == 0 {
		opt.Beta1 = 0.9
	}
	if opt.Beta2 == 0 {
		opt.Beta2 = 0.999
	}
	if opt.Eps == 0 {
		opt.Eps = 1e-8
	}
	if opt.TolGrad == 0 {
		opt.TolGrad = 1e-6
	}
	cf := &CountingGrad{F: f}
	x := append([]float64(nil), x0...)
	g := make([]float64, dim)
	m := make([]float64, dim)
	v := make([]float64, dim)
	res := AdamResult{X: append([]float64(nil), x0...), F: math.Inf(1)}
	b1t, b2t := 1.0, 1.0
	start := 0
	if st := opt.Resume; st != nil {
		if err := st.validate(dim); err != nil {
			res.Err = err
			return res
		}
		copy(x, st.X)
		copy(m, st.M)
		copy(v, st.V)
		b1t, b2t = st.B1t, st.B2t
		start = st.Iter
		cf.Calls = st.Evals
		res.Iters = st.Iter
		res.F = st.BestF
		copy(res.X, st.BestX)
	}
	for k := start; k < opt.MaxIter; k++ {
		if ctxDone(opt.Ctx) {
			break
		}
		fx := cf.Eval(x, g)
		res.Iters++
		if fx < res.F {
			res.F = fx
			copy(res.X, x)
		}
		if normInf(g) < opt.TolGrad {
			res.Converged = true
			break
		}
		b1t *= opt.Beta1
		b2t *= opt.Beta2
		for j := 0; j < dim; j++ {
			m[j] = opt.Beta1*m[j] + (1-opt.Beta1)*g[j]
			v[j] = opt.Beta2*v[j] + (1-opt.Beta2)*g[j]*g[j]
			mhat := m[j] / (1 - b1t)
			vhat := v[j] / (1 - b2t)
			x[j] -= opt.Step * mhat / (math.Sqrt(vhat) + opt.Eps)
		}
		if opt.Checkpoint != nil {
			st := &AdamState{
				X:     append([]float64(nil), x...),
				M:     append([]float64(nil), m...),
				V:     append([]float64(nil), v...),
				B1t:   b1t,
				B2t:   b2t,
				Iter:  k + 1,
				BestX: append([]float64(nil), res.X...),
				BestF: res.F,
				Evals: cf.Calls,
			}
			if err := opt.Checkpoint(st); err != nil {
				res.Err = err
				break
			}
		}
	}
	res.Evals = cf.Calls
	return res
}

// GDOptions configures GradientDescent. Zero values select defaults.
type GDOptions struct {
	// MaxIter bounds iterations (default 200).
	MaxIter int
	// Step is the learning rate (default 0.01).
	Step float64
	// Decay shrinks the step as Step/(1+Decay·k); 0 keeps it fixed.
	Decay float64
	// TolGrad stops when ‖∇f‖∞ falls below it (default 1e-6).
	TolGrad float64
	// Ctx, when non-nil, cancels the optimization at the next
	// iteration boundary.
	Ctx context.Context
	// Resume restores a checkpointed run; see AdamOptions.Resume. The
	// decaying step depends only on the iteration index, so a resumed
	// trajectory is bit-identical to an uninterrupted one.
	Resume *GDState
	// Checkpoint is called after every completed iteration; see
	// AdamOptions.Checkpoint.
	Checkpoint func(*GDState) error
}

// GDResult reports the optimum found by gradient descent.
type GDResult struct {
	// X and F are the best iterate seen.
	X     []float64
	F     float64
	Evals int
	Iters int
	// Converged is true when TolGrad was reached before MaxIter.
	Converged bool
	// Err is non-nil when the run stopped early on a Checkpoint
	// callback error or an invalid Resume state.
	Err error
}

// GradientDescent minimizes f with plain (optionally decaying-step)
// gradient descent. Adam is the better default on QAOA landscapes;
// this exists as the transparent baseline and for smooth convex
// subproblems.
func GradientDescent(f FuncGrad, x0 []float64, opt GDOptions) GDResult {
	dim := len(x0)
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200
	}
	if opt.Step == 0 {
		opt.Step = 0.01
	}
	if opt.TolGrad == 0 {
		opt.TolGrad = 1e-6
	}
	cf := &CountingGrad{F: f}
	x := append([]float64(nil), x0...)
	g := make([]float64, dim)
	res := GDResult{X: append([]float64(nil), x0...), F: math.Inf(1)}
	start := 0
	if st := opt.Resume; st != nil {
		if err := st.validate(dim); err != nil {
			res.Err = err
			return res
		}
		copy(x, st.X)
		start = st.Iter
		cf.Calls = st.Evals
		res.Iters = st.Iter
		res.F = st.BestF
		copy(res.X, st.BestX)
	}
	for k := start; k < opt.MaxIter; k++ {
		if ctxDone(opt.Ctx) {
			break
		}
		fx := cf.Eval(x, g)
		res.Iters++
		if fx < res.F {
			res.F = fx
			copy(res.X, x)
		}
		if normInf(g) < opt.TolGrad {
			res.Converged = true
			break
		}
		step := opt.Step / (1 + opt.Decay*float64(k))
		for j := 0; j < dim; j++ {
			x[j] -= step * g[j]
		}
		if opt.Checkpoint != nil {
			st := &GDState{
				X:     append([]float64(nil), x...),
				Iter:  k + 1,
				BestX: append([]float64(nil), res.X...),
				BestF: res.F,
				Evals: cf.Calls,
			}
			if err := opt.Checkpoint(st); err != nil {
				res.Err = err
				break
			}
		}
	}
	res.Evals = cf.Calls
	return res
}

func normInf(g []float64) float64 {
	var m float64
	for _, v := range g {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
