package optimize

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// rosenbrockish is a smooth non-quadratic objective whose Adam
// trajectory exercises both moments and the best-so-far tracking.
func rosenbrockish(x, g []float64) float64 {
	f := 0.0
	for j := 0; j+1 < len(x); j++ {
		a := x[j+1] - x[j]*x[j]
		b := 1 - x[j]
		f += 10*a*a + b*b
		g[j] = -40*a*x[j] - 2*b
		g[j+1] += 20 * a
	}
	// g is accumulated, so zero it first on entry.
	return f
}

func rosenGrad(x, g []float64) float64 {
	for j := range g {
		g[j] = 0
	}
	return rosenbrockish(x, g)
}

// TestAdamResumeBitIdentical checkpoints through disk at iteration k
// and asserts the resumed run's result is bit-identical to an
// uninterrupted run — the optimizer half of the durability contract.
func TestAdamResumeBitIdentical(t *testing.T) {
	x0 := []float64{-1.2, 1.0, 0.7, -0.3}
	const kHalf, kFull = 9, 25
	opts := AdamOptions{MaxIter: kFull, Step: 0.08}

	full := Adam(rosenGrad, x0, opts)
	if full.Err != nil {
		t.Fatal(full.Err)
	}

	path := filepath.Join(t.TempDir(), "adam.ckpt")
	half := opts
	half.MaxIter = kHalf
	half.Checkpoint = func(st *AdamState) error { return SaveAdamState(path, st) }
	if r := Adam(rosenGrad, x0, half); r.Err != nil {
		t.Fatal(r.Err)
	}

	st, err := LoadAdamState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iter != kHalf {
		t.Fatalf("checkpoint at iter %d, want %d", st.Iter, kHalf)
	}
	resumed := Adam(rosenGrad, x0, AdamOptions{MaxIter: kFull, Step: 0.08, Resume: st})
	if resumed.Err != nil {
		t.Fatal(resumed.Err)
	}

	if resumed.Iters != full.Iters || resumed.Evals != full.Evals {
		t.Errorf("counters: resumed (%d iters, %d evals) vs full (%d, %d)",
			resumed.Iters, resumed.Evals, full.Iters, full.Evals)
	}
	if math.Float64bits(resumed.F) != math.Float64bits(full.F) {
		t.Errorf("F: resumed %v vs full %v (bits differ)", resumed.F, full.F)
	}
	for j := range full.X {
		if math.Float64bits(resumed.X[j]) != math.Float64bits(full.X[j]) {
			t.Errorf("X[%d]: resumed %v vs full %v (bits differ)", j, resumed.X[j], full.X[j])
		}
	}
}

// TestGDResumeBitIdentical is the gradient-descent analogue, with step
// decay active so the resumed iteration index matters.
func TestGDResumeBitIdentical(t *testing.T) {
	x0 := []float64{2.0, -1.5, 0.5}
	const kHalf, kFull = 7, 20
	opts := GDOptions{MaxIter: kFull, Step: 0.02, Decay: 0.1}

	full := GradientDescent(rosenGrad, x0, opts)
	if full.Err != nil {
		t.Fatal(full.Err)
	}

	path := filepath.Join(t.TempDir(), "gd.ckpt")
	half := opts
	half.MaxIter = kHalf
	half.Checkpoint = func(st *GDState) error { return SaveGDState(path, st) }
	if r := GradientDescent(rosenGrad, x0, half); r.Err != nil {
		t.Fatal(r.Err)
	}

	st, err := LoadGDState(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := GradientDescent(rosenGrad, x0, GDOptions{MaxIter: kFull, Step: 0.02, Decay: 0.1, Resume: st})
	if resumed.Err != nil {
		t.Fatal(resumed.Err)
	}
	if resumed.Iters != full.Iters || resumed.Evals != full.Evals {
		t.Errorf("counters: resumed (%d iters, %d evals) vs full (%d, %d)",
			resumed.Iters, resumed.Evals, full.Iters, full.Evals)
	}
	for j := range full.X {
		if math.Float64bits(resumed.X[j]) != math.Float64bits(full.X[j]) {
			t.Errorf("X[%d]: resumed %v vs full %v (bits differ)", j, resumed.X[j], full.X[j])
		}
	}
	if math.Float64bits(resumed.F) != math.Float64bits(full.F) {
		t.Errorf("F: resumed %v vs full %v", resumed.F, full.F)
	}
}

// TestAdamStateRoundTrip covers the codec directly, including the
// non-finite BestF a fresh checkpoint can carry.
func TestAdamStateRoundTrip(t *testing.T) {
	st := &AdamState{
		X:     []float64{1, -2, 3},
		M:     []float64{0.1, 0.2, -0.3},
		V:     []float64{1e-4, 2e-4, 3e-4},
		B1t:   0.9 * 0.9,
		B2t:   0.999,
		Iter:  17,
		BestX: []float64{0.5, 0.5, 0.5},
		BestF: math.Inf(1),
		Evals: 21,
	}
	got, err := DecodeAdamState(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Iter != st.Iter || got.Evals != st.Evals ||
		math.Float64bits(got.B1t) != math.Float64bits(st.B1t) ||
		math.Float64bits(got.B2t) != math.Float64bits(st.B2t) ||
		!math.IsInf(got.BestF, 1) {
		t.Fatalf("scalar mismatch: %+v vs %+v", got, st)
	}
	for j := range st.X {
		if got.X[j] != st.X[j] || got.M[j] != st.M[j] || got.V[j] != st.V[j] || got.BestX[j] != st.BestX[j] {
			t.Fatalf("vector mismatch at %d", j)
		}
	}
	if _, err := DecodeAdamState(st.Encode()[:10]); err == nil {
		t.Error("truncated payload accepted")
	}
}

// TestCheckpointErrorStopsRun asserts a failing Checkpoint callback
// halts the loop and surfaces through Err — the mechanism that stops
// Adam from iterating on a latched-error objective.
func TestCheckpointErrorStopsRun(t *testing.T) {
	boom := errors.New("disk full")
	calls := 0
	res := Adam(rosenGrad, []float64{-1.5, 2}, AdamOptions{
		MaxIter: 50,
		Checkpoint: func(st *AdamState) error {
			calls++
			if calls == 3 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(res.Err, boom) {
		t.Fatalf("Err = %v, want %v", res.Err, boom)
	}
	if res.Iters != 3 {
		t.Errorf("stopped after %d iters, want 3", res.Iters)
	}
}

// TestResumeDimensionMismatch asserts a state from a different problem
// is rejected up front instead of silently truncating.
func TestResumeDimensionMismatch(t *testing.T) {
	st := &AdamState{X: []float64{1, 2}, M: []float64{0, 0}, V: []float64{0, 0}, BestX: []float64{1, 2}}
	res := Adam(rosenGrad, []float64{1, 2, 3}, AdamOptions{Resume: st})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "dimension") {
		t.Fatalf("Err = %v, want dimension mismatch", res.Err)
	}
	if res.Evals != 0 {
		t.Errorf("objective was evaluated %d times despite invalid resume", res.Evals)
	}
	gres := GradientDescent(rosenGrad, []float64{1, 2, 3}, GDOptions{Resume: &GDState{X: []float64{1}, BestX: []float64{1}}})
	if gres.Err == nil || !strings.Contains(gres.Err.Error(), "dimension") {
		t.Fatalf("GD Err = %v, want dimension mismatch", gres.Err)
	}
}
