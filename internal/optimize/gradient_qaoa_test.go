package optimize_test

import (
	"context"
	"testing"

	"qokit/internal/core"
	"qokit/internal/grad"
	"qokit/internal/optimize"
	"qokit/internal/problems"
)

// TestAdamBeatsNelderMeadBudget is the optimizer convergence
// regression of the gradient subsystem: on a pinned LABS instance and
// the standard TQA warm start, Adam over exact adjoint gradients must
// reach the Nelder–Mead baseline energy in at most half the objective
// evaluations NM consumed. (The margin is in fact much larger — a
// quarter of the budget reaches a *lower* energy, and each adjoint
// evaluation costs only ≈ 4 simulations where one NM evaluation costs
// 1 — but the asserted bound is the contract.) Everything here is
// deterministic: fixed instance, fixed start, deterministic
// optimizers.
func TestAdamBeatsNelderMeadBudget(t *testing.T) {
	const n, p = 10, 6
	sim, err := core.New(n, problems.LABSTerms(n), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g0, b0 := optimize.TQAInit(p, 0.75)
	x0 := optimize.JoinAngles(g0, b0)

	// Nelder–Mead baseline through one reusable state buffer.
	r := sim.NewResult()
	nm := optimize.NelderMead(func(x []float64) float64 {
		gg, bb := optimize.SplitAngles(x)
		if err := sim.SimulateQAOAInto(r, gg, bb); err != nil {
			t.Fatal(err)
		}
		return r.Expectation()
	}, x0, optimize.NMOptions{})

	eng := grad.New(sim)
	var simErr error
	adam := optimize.Adam(eng.FlatObjective(context.Background(), &simErr), x0,
		optimize.AdamOptions{MaxIter: nm.Evals / 2})
	if simErr != nil {
		t.Fatal(simErr)
	}
	if adam.Evals > nm.Evals/2 {
		t.Fatalf("Adam consumed %d evaluations, budget was %d (half of NM's %d)",
			adam.Evals, nm.Evals/2, nm.Evals)
	}
	if adam.F > nm.F {
		t.Errorf("Adam energy %.6f did not reach the NM baseline %.6f within %d evaluations",
			adam.F, nm.F, adam.Evals)
	}
}
