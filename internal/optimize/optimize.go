// Package optimize provides the derivative-free local optimizers used
// to tune QAOA parameters — the outer loop of the paper's Fig. 1,
// whose repeated objective evaluations the precomputed diagonal
// accelerates. Nelder–Mead is the typical QOKit/SciPy default; SPSA is
// the common noisy-hardware alternative; TQAInit supplies the
// Trotterized-quantum-annealing linear-ramp initialization (the
// paper's Ref. [44]) that makes high-depth optimization tractable.
package optimize

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ctxDone reports whether a per-call options context is cancelled; a
// nil context never is. Every optimizer loop in this package checks it
// once per iteration: on cancellation the loop stops and the best
// iterate found so far is returned (with Converged false), so a
// serving layer can abandon an optimization without losing the
// progress already paid for. Callers that must distinguish "budget
// exhausted" from "cancelled" check their context's Err afterwards.
func ctxDone(ctx context.Context) bool { return ctx != nil && ctx.Err() != nil }

// Func is an objective to minimize.
type Func func(x []float64) float64

// Counting wraps an objective and counts evaluations; read Calls after
// optimizing to know the evaluation budget consumed.
type Counting struct {
	F     Func
	Calls int
}

// Eval evaluates and counts.
func (c *Counting) Eval(x []float64) float64 {
	c.Calls++
	return c.F(x)
}

// NMOptions configures NelderMead. Zero values select the defaults
// noted per field.
type NMOptions struct {
	// MaxIter bounds simplex iterations (default 200·dim).
	MaxIter int
	// MaxEvals bounds objective evaluations (default unlimited).
	MaxEvals int
	// TolF stops when the simplex value spread falls below it
	// (default 1e-8).
	TolF float64
	// InitialStep sets the simplex edge length (default 0.1).
	InitialStep float64
	// Ctx, when non-nil, cancels the optimization: the loop stops at
	// the next iteration boundary and returns the best iterate so far.
	Ctx context.Context
}

// NMResult reports the optimum found.
type NMResult struct {
	X     []float64
	F     float64
	Evals int
	Iters int
	// Converged is true when TolF was reached before any budget.
	Converged bool
}

// NelderMead minimizes f from x0 with the standard downhill-simplex
// method (reflection 1, expansion 2, contraction ½, shrink ½).
func NelderMead(f Func, x0 []float64, opt NMOptions) NMResult {
	dim := len(x0)
	if dim == 0 {
		return NMResult{X: nil, F: f(nil), Evals: 1, Converged: true}
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 200 * dim
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-8
	}
	if opt.InitialStep == 0 {
		opt.InitialStep = 0.1
	}
	cf := &Counting{F: f}
	budget := func() bool { return opt.MaxEvals > 0 && cf.Calls >= opt.MaxEvals }

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = cf.Eval(simplex[0].x)
	for i := 1; i <= dim; i++ {
		x := append([]float64(nil), x0...)
		x[i-1] += opt.InitialStep
		simplex[i] = vertex{x: x, f: cf.Eval(x)}
	}
	sortSimplex := func() {
		sort.SliceStable(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	centroid := make([]float64, dim)
	point := func(coef float64) ([]float64, float64) {
		x := make([]float64, dim)
		worst := simplex[dim].x
		for j := 0; j < dim; j++ {
			x[j] = centroid[j] + coef*(centroid[j]-worst[j])
		}
		return x, cf.Eval(x)
	}

	res := NMResult{}
	for iter := 0; iter < opt.MaxIter; iter++ {
		sortSimplex()
		if simplex[dim].f-simplex[0].f < opt.TolF {
			res.Converged = true
			break
		}
		if budget() || ctxDone(opt.Ctx) {
			break
		}
		res.Iters++
		for j := 0; j < dim; j++ {
			centroid[j] = 0
			for i := 0; i < dim; i++ {
				centroid[j] += simplex[i].x[j]
			}
			centroid[j] /= float64(dim)
		}
		xr, fr := point(1) // reflection
		switch {
		case fr < simplex[0].f:
			if budget() {
				simplex[dim] = vertex{xr, fr}
				break
			}
			xe, fe := point(2) // expansion
			if fe < fr {
				simplex[dim] = vertex{xe, fe}
			} else {
				simplex[dim] = vertex{xr, fr}
			}
		case fr < simplex[dim-1].f:
			simplex[dim] = vertex{xr, fr}
		default:
			if budget() {
				break
			}
			xc, fc := point(-0.5) // inside contraction
			if fc < simplex[dim].f {
				simplex[dim] = vertex{xc, fc}
			} else {
				// shrink toward the best vertex
				for i := 1; i <= dim; i++ {
					if budget() {
						break
					}
					for j := 0; j < dim; j++ {
						simplex[i].x[j] = simplex[0].x[j] + 0.5*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = cf.Eval(simplex[i].x)
				}
			}
		}
		if budget() {
			break
		}
	}
	sortSimplex()
	res.X = simplex[0].x
	res.F = simplex[0].f
	res.Evals = cf.Calls
	return res
}

// SPSAOptions configures SPSA. Zero values select defaults.
type SPSAOptions struct {
	// Steps is the iteration count (default 100).
	Steps int
	// A and C scale the gain sequences a_k = A/(k+1+A/10)^0.602 and
	// c_k = C/(k+1)^0.101 (defaults 0.2 and 0.1).
	A, C float64
	// Seed makes the perturbation sequence deterministic.
	Seed int64
	// Ctx, when non-nil, cancels the optimization at the next step.
	Ctx context.Context
}

// SPSAResult reports the optimum found by SPSA.
type SPSAResult struct {
	X     []float64
	F     float64
	Evals int
}

// SPSA minimizes f by simultaneous-perturbation stochastic
// approximation: each step estimates the gradient from two objective
// evaluations at a random ± perturbation.
func SPSA(f Func, x0 []float64, opt SPSAOptions) SPSAResult {
	if opt.Steps <= 0 {
		opt.Steps = 100
	}
	if opt.A == 0 {
		opt.A = 0.2
	}
	if opt.C == 0 {
		opt.C = 0.1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cf := &Counting{F: f}
	x := append([]float64(nil), x0...)
	delta := make([]float64, len(x))
	xp := make([]float64, len(x))
	xm := make([]float64, len(x))
	for k := 0; k < opt.Steps; k++ {
		if ctxDone(opt.Ctx) {
			break
		}
		ak := opt.A / math.Pow(float64(k+1)+opt.A/10, 0.602)
		ck := opt.C / math.Pow(float64(k+1), 0.101)
		for j := range delta {
			if rng.Intn(2) == 0 {
				delta[j] = 1
			} else {
				delta[j] = -1
			}
			xp[j] = x[j] + ck*delta[j]
			xm[j] = x[j] - ck*delta[j]
		}
		g := (cf.Eval(xp) - cf.Eval(xm)) / (2 * ck)
		for j := range x {
			x[j] -= ak * g / delta[j]
		}
	}
	return SPSAResult{X: x, F: cf.Eval(x), Evals: cf.Calls}
}

// TQAInit returns the Trotterized-quantum-annealing linear-ramp
// initialization for p QAOA layers with time step dt:
//
//	γ_l = (l+½)/p · dt,   β_l = (1 − (l+½)/p) · dt,  l = 0…p−1.
//
// This schedule (Sack & Serbyn, the paper's Ref. [44]) is the standard
// high-depth QAOA starting point; dt ≈ 0.75 works well for the
// problems in this repository.
func TQAInit(p int, dt float64) (gamma, beta []float64) {
	gamma = make([]float64, p)
	beta = make([]float64, p)
	for l := 0; l < p; l++ {
		frac := (float64(l) + 0.5) / float64(p)
		gamma[l] = frac * dt
		beta[l] = (1 - frac) * dt
	}
	return gamma, beta
}

// SplitAngles splits a flat optimizer vector [γ₀…γ_{p−1}, β₀…β_{p−1}]
// into its two halves; it panics on odd lengths.
func SplitAngles(x []float64) (gamma, beta []float64) {
	if len(x)%2 != 0 {
		panic(fmt.Sprintf("optimize: angle vector length %d is odd", len(x)))
	}
	p := len(x) / 2
	return x[:p], x[p : 2*p]
}

// JoinAngles concatenates γ and β into the flat optimizer vector.
func JoinAngles(gamma, beta []float64) []float64 {
	out := make([]float64, 0, len(gamma)+len(beta))
	out = append(out, gamma...)
	out = append(out, beta...)
	return out
}
