// Package registry decouples problem definition from evaluator
// construction: callers register a problem once (terms + qubit count +
// mixer family) and get back a canonical key; every evaluator factory
// then acquires the problem's precomputed cost diagonal — float64 and,
// on demand, quantized — from a byte-budgeted LRU cache instead of
// re-paying the 2ⁿ precompute per construction. A second EvalBatch for
// the same graph therefore performs zero diagonal-precompute work,
// which is the property the registry_cache_hit bench row gates.
//
// Entries are refcounted: eviction under budget pressure removes an
// entry from the LRU immediately, but its diagonal is only reclaimed
// once the last in-flight acquisition releases it, so an evaluation
// that is mid-sweep when its problem is evicted keeps reading valid
// data. An acquire that arrives while an evicted entry is still
// pinned resurrects it instead of recomputing.
package registry

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sync"

	"qokit/internal/core"
	"qokit/internal/costvec"
	"qokit/internal/poly"
	"qokit/internal/statevec"
)

// Spec identifies a problem: the cost polynomial, the qubit count, and
// the mixer family (which fixes the feasible subspace the diagonal is
// evaluated against — the diagonal itself depends only on the terms,
// but evaluators built for different mixers are not interchangeable,
// so the mixer participates in the canonical key).
type Spec struct {
	// N is the number of qubits (1 ≤ N ≤ 34, the core simulator range).
	N int
	// Terms is the cost polynomial in the spin convention. It is
	// canonicalized (duplicate masks merged, zero weights dropped,
	// sorted) before hashing, so term order does not split the cache.
	Terms poly.Terms
	// Mixer is the mixer family the problem will be driven with.
	Mixer core.Mixer
	// HammingWeight is the Dicke sector for the xy mixers (≤ 0 means
	// the N/2 default). Ignored — and normalized to zero in the key —
	// for MixerX.
	HammingWeight int
}

// Key is the canonical problem hash: hex(SHA-256) over the
// canonicalized terms, N, and the mixer family. Identical problems
// registered from different term orderings map to the same Key.
type Key string

// Options configures a Registry.
type Options struct {
	// MaxBytes caps the resident bytes of cached diagonals (float64
	// plus quantized forms, 8·2ⁿ + 2·2ⁿ per fully-materialized entry,
	// the same byte accounting evaluator Caps().StateBytes uses for
	// state buffers). 0 means unlimited. Entries pinned by in-flight
	// acquisitions may hold the cache transiently over budget; they
	// are reclaimed on final release.
	MaxBytes int64
	// PrecomputeWorkers sizes the worker pool used for diagonal
	// precompute on a cache miss (0 = GOMAXPROCS).
	PrecomputeWorkers int
}

// Stats reports registry cache behavior. Precomputes counts actual
// diagonal evaluations — the counter the warm-path assertions check
// stays flat across repeated acquisitions.
type Stats struct {
	Problems      int   // registered problems
	Hits          int64 // acquisitions served from cache (incl. resurrections)
	Misses        int64 // acquisitions that had to precompute
	Precomputes   int64 // float64 diagonal precomputes actually run
	Quantizes     int64 // quantized forms actually built
	Evictions     int64 // LRU evictions under budget pressure
	ResidentBytes int64 // bytes of cached forms currently in the LRU
	PinnedBytes   int64 // bytes held by evicted-but-still-referenced entries
}

// Registry is the problem cache. All methods are safe for concurrent
// use; diagonal precompute and quantization run outside the registry
// lock so a large miss does not stall unrelated hits.
type Registry struct {
	mu    sync.Mutex
	opts  Options
	pool  *statevec.Pool
	byKey map[Key]*entry
	// LRU list of resident entries: head = most recent, tail = next
	// eviction victim.
	head, tail *entry
	stats      Stats
}

type entry struct {
	key      Key
	spec     Spec
	compiled poly.Compiled

	// Cached forms. diag == nil means not materialized (never built,
	// or reclaimed after eviction). building/quantizing are non-nil
	// while a build is in flight so concurrent acquirers wait instead
	// of duplicating the precompute.
	diag       []float64
	quant      *costvec.Quantized
	bytes      int64
	refs       int
	evicted    bool
	building   chan struct{}
	quantizing chan struct{}

	prev, next *entry
}

// New builds an empty registry.
func New(opts Options) *Registry {
	return &Registry{
		opts:  opts,
		pool:  statevec.NewPool(opts.PrecomputeWorkers),
		byKey: make(map[Key]*entry),
	}
}

// KeyFor computes the canonical key of a spec without registering it.
func KeyFor(spec Spec) (Key, error) {
	if spec.N < 1 || spec.N > 34 {
		return "", fmt.Errorf("registry: n=%d outside supported range [1, 34]", spec.N)
	}
	canon := spec.Terms.Canonical()
	for _, t := range canon {
		if m := t.Mask(); m >= 1<<uint(spec.N) {
			return "", fmt.Errorf("registry: term %v references a qubit ≥ n=%d", t, spec.N)
		}
	}
	hw := spec.HammingWeight
	if spec.Mixer == core.MixerX {
		hw = 0
	} else if hw <= 0 {
		hw = spec.N / 2
	}
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(spec.N))
	put(uint64(spec.Mixer))
	put(uint64(hw))
	for _, t := range canon {
		put(t.Mask())
		put(math.Float64bits(t.Weight))
	}
	return Key(hex.EncodeToString(h.Sum(nil))), nil
}

// Register adds a problem (idempotently) and returns its canonical
// key. Registration is cheap — no precompute happens until the first
// Acquire.
func (r *Registry) Register(spec Spec) (Key, error) {
	key, err := KeyFor(spec)
	if err != nil {
		return "", err
	}
	canon := spec.Terms.Canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byKey[key]; !ok {
		norm := spec
		norm.Terms = canon
		if norm.Mixer == core.MixerX {
			norm.HammingWeight = 0
		} else if norm.HammingWeight <= 0 {
			norm.HammingWeight = spec.N / 2
		}
		r.byKey[key] = &entry{key: key, spec: norm, compiled: poly.Compile(canon)}
		r.stats.Problems++
	}
	return key, nil
}

// Spec returns the normalized spec of a registered problem.
func (r *Registry) Spec(key Key) (Spec, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byKey[key]
	if !ok {
		return Spec{}, fmt.Errorf("registry: unknown problem key %s", key)
	}
	return e.spec, nil
}

// Stats returns a snapshot of the cache counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Handle is one refcounted acquisition of a problem's cached forms.
// The diagonal it exposes stays valid — even across an eviction —
// until Release.
type Handle struct {
	r        *Registry
	e        *entry
	released bool
}

// Acquire returns a handle on the problem's float64 diagonal,
// precomputing it on first use. Concurrent acquirers of a cold entry
// share one precompute. ctx bounds the wait on an in-flight build.
func (r *Registry) Acquire(ctx context.Context, key Key) (*Handle, error) {
	for {
		r.mu.Lock()
		e, ok := r.byKey[key]
		if !ok {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: unknown problem key %s", key)
		}
		if e.diag != nil {
			// Hit: resident, or evicted-but-pinned (resurrect).
			if e.evicted {
				r.stats.PinnedBytes -= e.bytes
				r.stats.ResidentBytes += e.bytes
				e.evicted = false
				r.pushFront(e)
				r.evictLocked()
			} else {
				r.moveFront(e)
			}
			e.refs++
			r.stats.Hits++
			r.mu.Unlock()
			return &Handle{r: r, e: e}, nil
		}
		if e.building != nil {
			done := e.building
			r.mu.Unlock()
			select {
			case <-done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue // re-check under the lock
		}
		// Miss: this goroutine owns the build.
		e.building = make(chan struct{})
		r.stats.Misses++
		r.stats.Precomputes++
		r.mu.Unlock()

		diag := costvec.PrecomputePool(r.pool, e.compiled, e.spec.N)

		r.mu.Lock()
		e.diag = diag
		e.bytes = int64(8 * len(diag))
		e.refs++
		close(e.building)
		e.building = nil
		r.stats.ResidentBytes += e.bytes
		r.pushFront(e)
		r.evictLocked()
		r.mu.Unlock()
		return &Handle{r: r, e: e}, nil
	}
}

// evictLocked pops LRU victims until the resident bytes fit the
// budget. Victims still referenced by in-flight handles move to the
// pinned account and are reclaimed on final release; unreferenced
// victims are reclaimed immediately.
func (r *Registry) evictLocked() {
	for r.opts.MaxBytes > 0 && r.stats.ResidentBytes > r.opts.MaxBytes && r.tail != nil {
		e := r.tail
		r.unlink(e)
		e.evicted = true
		r.stats.Evictions++
		r.stats.ResidentBytes -= e.bytes
		if e.refs > 0 {
			r.stats.PinnedBytes += e.bytes
		} else {
			reclaim(e)
		}
	}
}

// reclaim drops an entry's cached forms. The float64 diagonal is
// poisoned with NaN first so any use-after-release — the bug class the
// refcounting exists to prevent — turns into a loud non-finite energy
// instead of a silent stale read.
func reclaim(e *entry) {
	for i := range e.diag {
		e.diag[i] = math.NaN()
	}
	e.diag = nil
	e.quant = nil
	e.bytes = 0
	e.evicted = false
}

// Diag returns the cached float64 cost diagonal. Callers must treat it
// as read-only and must not retain it past Release.
func (h *Handle) Diag() []float64 { return h.e.diag }

// Key returns the problem key this handle is bound to.
func (h *Handle) Key() Key { return h.e.key }

// Spec returns the normalized problem spec.
func (h *Handle) Spec() Spec { return h.e.spec }

// Quantized returns the problem's uint16-quantized diagonal, building
// and caching it on first use (its 2·2ⁿ bytes join the entry's budget
// accounting). The quantization is computed once over the full
// diagonal, so per-rank slices of it are globally consistent without
// any cross-rank agreement step.
func (h *Handle) Quantized() (*costvec.Quantized, error) {
	r, e := h.r, h.e
	for {
		r.mu.Lock()
		if h.released {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: Quantized on released handle for %s", e.key)
		}
		if e.quant != nil {
			q := e.quant
			r.mu.Unlock()
			return q, nil
		}
		if e.quantizing != nil {
			done := e.quantizing
			r.mu.Unlock()
			<-done
			continue
		}
		e.quantizing = make(chan struct{})
		diag := e.diag
		r.stats.Quantizes++
		r.mu.Unlock()

		q, err := costvec.QuantizeAuto(diag)

		r.mu.Lock()
		close(e.quantizing)
		e.quantizing = nil
		if err != nil {
			r.mu.Unlock()
			return nil, fmt.Errorf("registry: quantizing diagonal for %s: %w", e.key, err)
		}
		e.quant = q
		qb := int64(q.MemoryBytes())
		e.bytes += qb
		if e.evicted {
			r.stats.PinnedBytes += qb
		} else {
			r.stats.ResidentBytes += qb
			r.evictLocked()
		}
		r.mu.Unlock()
		return q, nil
	}
}

// Release drops the handle's reference. When the last reference to an
// evicted entry is released, its cached forms are reclaimed; a later
// Acquire recomputes from scratch.
func (h *Handle) Release() {
	r, e := h.r, h.e
	r.mu.Lock()
	defer r.mu.Unlock()
	if h.released {
		return
	}
	h.released = true
	e.refs--
	if e.refs == 0 && e.evicted {
		r.stats.PinnedBytes -= e.bytes
		reclaim(e)
	}
}

// --- intrusive LRU list (r.mu held) ---

func (r *Registry) pushFront(e *entry) {
	e.prev = nil
	e.next = r.head
	if r.head != nil {
		r.head.prev = e
	}
	r.head = e
	if r.tail == nil {
		r.tail = e
	}
}

func (r *Registry) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		r.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		r.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (r *Registry) moveFront(e *entry) {
	if r.head == e {
		return
	}
	r.unlink(e)
	r.pushFront(e)
}
