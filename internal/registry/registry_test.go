package registry

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"qokit/internal/core"
	"qokit/internal/costvec"
	"qokit/internal/evaluator"
	"qokit/internal/poly"
	"qokit/internal/problems"
	"qokit/internal/serve"
	"qokit/internal/sweep"
)

func mustRegister(t *testing.T, r *Registry, spec Spec) Key {
	t.Helper()
	key, err := r.Register(spec)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// TestKeyCanonical: term order and duplicate masks must not split the
// cache; genuinely different problems must not collide.
func TestKeyCanonical(t *testing.T) {
	a := poly.Terms{poly.NewTerm(0.5, 0, 1), poly.NewTerm(-1.5), poly.NewTerm(0.25, 1, 2), poly.NewTerm(0.25, 1, 2)}
	b := poly.Terms{poly.NewTerm(0.5, 1, 2), poly.NewTerm(0.5, 0, 1), poly.NewTerm(-1.5)}
	ka, err := KeyFor(Spec{N: 4, Terms: a})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := KeyFor(Spec{N: 4, Terms: b})
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("reordered+merged terms hashed differently:\n%s\n%s", ka, kb)
	}
	if kn, _ := KeyFor(Spec{N: 5, Terms: a}); kn == ka {
		t.Error("different n produced the same key")
	}
	if km, _ := KeyFor(Spec{N: 4, Terms: a, Mixer: core.MixerXYRing}); km == ka {
		t.Error("different mixer family produced the same key")
	}
	if _, err := KeyFor(Spec{N: 1, Terms: a}); err == nil {
		t.Error("terms referencing qubits ≥ n accepted")
	}
}

// TestCacheHitSkipsPrecompute is the tentpole property: a second
// acquisition of the same problem performs zero diagonal-precompute
// work, counted directly.
func TestCacheHitSkipsPrecompute(t *testing.T) {
	const n = 10
	r := New(Options{})
	key := mustRegister(t, r, Spec{N: n, Terms: problems.LABSTerms(n)})

	ctx := context.Background()
	h1, err := r.Acquire(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	want := costvec.Precompute(poly.Compile(problems.LABSTerms(n).Canonical()), n)
	for i, v := range h1.Diag() {
		if v != want[i] {
			t.Fatalf("diag[%d] = %v, want %v", i, v, want[i])
		}
	}
	h1.Release()

	for i := 0; i < 5; i++ {
		h, err := r.Acquire(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Quantized(); err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	st := r.Stats()
	if st.Precomputes != 1 {
		t.Errorf("Precomputes = %d after repeated acquisitions, want 1", st.Precomputes)
	}
	if st.Quantizes != 1 {
		t.Errorf("Quantizes = %d after repeated Quantized calls, want 1", st.Quantizes)
	}
	if st.Hits != 5 || st.Misses != 1 {
		t.Errorf("Hits/Misses = %d/%d, want 5/1", st.Hits, st.Misses)
	}
}

// TestConcurrentColdAcquire: many goroutines racing on a cold entry
// share one precompute.
func TestConcurrentColdAcquire(t *testing.T) {
	const n, goroutines = 10, 16
	r := New(Options{})
	key := mustRegister(t, r, Spec{N: n, Terms: problems.LABSTerms(n)})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := r.Acquire(context.Background(), key)
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Release()
			if len(h.Diag()) != 1<<n {
				t.Errorf("diag length %d", len(h.Diag()))
			}
		}()
	}
	wg.Wait()
	if st := r.Stats(); st.Precomputes != 1 {
		t.Errorf("Precomputes = %d under concurrent cold acquire, want 1", st.Precomputes)
	}
}

// TestEvictionAndRecompute: a budget for one diagonal evicts LRU-first
// and recomputes on re-acquisition.
func TestEvictionAndRecompute(t *testing.T) {
	const n = 8
	r := New(Options{MaxBytes: 8 << n}) // exactly one float64 diagonal
	ka := mustRegister(t, r, Spec{N: n, Terms: problems.LABSTerms(n)})
	kb := mustRegister(t, r, Spec{N: n, Terms: poly.Terms{poly.NewTerm(1, 0, 1)}})

	ctx := context.Background()
	for _, key := range []Key{ka, kb, ka} {
		h, err := r.Acquire(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	st := r.Stats()
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (each acquire evicts the other)", st.Evictions)
	}
	if st.Precomputes != 3 {
		t.Errorf("Precomputes = %d, want 3 (third acquire recomputes)", st.Precomputes)
	}
	if st.ResidentBytes != 8<<n || st.PinnedBytes != 0 {
		t.Errorf("Resident/Pinned = %d/%d, want %d/0", st.ResidentBytes, st.PinnedBytes, 8<<n)
	}
}

// TestEvictionUnderConcurrentEvalBatch is the refcount regression
// test: diagonals evicted while an in-flight EvalBatch holds them must
// stay valid until released. Without refcounting, the eviction's NaN
// scrub would land mid-evaluation and the energies below would come
// back non-finite.
func TestEvictionUnderConcurrentEvalBatch(t *testing.T) {
	const n, p, points, rounds = 8, 2, 16, 8
	terms := problems.LABSTerms(n)
	r := New(Options{MaxBytes: 8 << n}) // room for one diagonal: every new acquire evicts the other problem
	ka := mustRegister(t, r, Spec{N: n, Terms: terms})
	kb := mustRegister(t, r, Spec{N: n, Terms: poly.Terms{poly.NewTerm(1, 0, 1), poly.NewTerm(0.5, 2, 3)}})

	rng := rand.New(rand.NewSource(5))
	xs := make([][]float64, points)
	for i := range xs {
		x := make([]float64, 2*p)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
	}

	// Reference energies from a registry-free simulator.
	refSim, err := core.New(n, terms, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refEng := sweep.New(refSim, sweep.Options{Workers: 1})
	want := make([]float64, points)
	for i, x := range xs {
		if want[i], err = refEng.Energy(context.Background(), x); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	evalErr := make(chan error, rounds*2)
	go func() {
		// Churn: repeatedly acquire problem B, forcing A's eviction
		// while the main goroutine is mid-EvalBatch on A's diagonal.
		defer wg.Done()
		for i := 0; i < rounds*4; i++ {
			h, err := r.Acquire(ctx, kb)
			if err != nil {
				evalErr <- err
				return
			}
			h.Release()
		}
	}()
	for round := 0; round < rounds; round++ {
		cf := core.NewFactory(n, core.Options{}, func(ctx context.Context) (core.DiagSource, error) {
			h, err := r.Acquire(ctx, ka)
			if err != nil {
				return nil, err
			}
			return h, nil
		})
		svc, err := serve.NewElastic([]evaluator.Factory{sweep.NewFactory(cf, sweep.Options{})}, serve.ElasticOptions{MinWorkers: 1, MaxWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.EnergyBatch(ctx, xs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.IsNaN(got[i]) {
				t.Fatalf("round %d point %d: NaN energy — evicted diagonal was reclaimed under an in-flight evaluation", round, i)
			}
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("round %d point %d: energy %v, want %v", round, i, got[i], want[i])
			}
		}
		svc.Close() // last retire releases the handle; the evicted entry may now be reclaimed
	}
	wg.Wait()
	close(evalErr)
	for err := range evalErr {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.PinnedBytes != 0 {
		t.Errorf("PinnedBytes = %d after all handles released, want 0", st.PinnedBytes)
	}
	if st.Evictions == 0 {
		t.Error("test exercised no evictions — budget/churn mismatch")
	}
}

// TestResurrection: acquiring an evicted-but-pinned entry revives it
// (counted as a hit) instead of recomputing a second copy.
func TestResurrection(t *testing.T) {
	const n = 8
	r := New(Options{MaxBytes: 8 << n})
	ka := mustRegister(t, r, Spec{N: n, Terms: problems.LABSTerms(n)})
	kb := mustRegister(t, r, Spec{N: n, Terms: poly.Terms{poly.NewTerm(1, 0, 1)}})

	ctx := context.Background()
	ha, err := r.Acquire(ctx, ka)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := r.Acquire(ctx, kb) // evicts A (pinned by ha)
	if err != nil {
		t.Fatal(err)
	}
	hb.Release()
	if st := r.Stats(); st.PinnedBytes != 8<<n {
		t.Fatalf("PinnedBytes = %d with A evicted under a live handle, want %d", st.PinnedBytes, 8<<n)
	}
	ha2, err := r.Acquire(ctx, ka) // resurrects A
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Precomputes != 2 {
		t.Errorf("Precomputes = %d, want 2 (resurrection must not recompute)", st.Precomputes)
	}
	if st.PinnedBytes != 0 {
		t.Errorf("PinnedBytes = %d after resurrection, want 0", st.PinnedBytes)
	}
	ha.Release()
	ha2.Release()
}
