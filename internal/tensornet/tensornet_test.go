package tensornet

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qokit/internal/gatesim"
	"qokit/internal/problems"
	"qokit/internal/statevec"
)

func TestNewTensorValidation(t *testing.T) {
	if _, err := NewTensor([]int{0, 1}, make([]complex128, 3)); err == nil {
		t.Error("wrong data length accepted")
	}
	if _, err := NewTensor([]int{0, 0}, make([]complex128, 4)); err == nil {
		t.Error("repeated label accepted")
	}
	if _, err := NewTensor(nil, []complex128{2}); err != nil {
		t.Errorf("scalar tensor rejected: %v", err)
	}
}

func TestContractMatrixVector(t *testing.T) {
	// M (labels out,in) × v (label in) = Mv (label out).
	m, _ := NewTensor([]int{1, 0}, []complex128{1, 2, 3, 4}) // [[1,2],[3,4]]
	v, _ := NewTensor([]int{0}, []complex128{5, 6})
	r, err := Contract(m, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 1 || r.Labels[0] != 1 {
		t.Fatalf("labels = %v", r.Labels)
	}
	if r.Data[0] != 17 || r.Data[1] != 39 {
		t.Fatalf("Mv = %v, want [17, 39]", r.Data)
	}
}

func TestContractFullInner(t *testing.T) {
	a, _ := NewTensor([]int{0, 1}, []complex128{1, 2, 3, 4})
	b, _ := NewTensor([]int{0, 1}, []complex128{5, 6, 7, 8})
	r, err := Contract(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rank() != 0 {
		t.Fatalf("rank = %d", r.Rank())
	}
	if r.Data[0] != 5+12+21+32 {
		t.Fatalf("inner = %v, want 70", r.Data[0])
	}
}

func TestContractOuterProduct(t *testing.T) {
	a, _ := NewTensor([]int{0}, []complex128{1, 2})
	b, _ := NewTensor([]int{1}, []complex128{3, 4})
	r, err := Contract(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{3, 4, 6, 8} // [a0 b0, a0 b1, a1 b0, a1 b1]
	for i := range want {
		if r.Data[i] != want[i] {
			t.Fatalf("outer = %v, want %v", r.Data, want)
		}
	}
}

func TestContractSizeCap(t *testing.T) {
	a, _ := NewTensor([]int{0, 1, 2}, make([]complex128, 8))
	b, _ := NewTensor([]int{3, 4, 5}, make([]complex128, 8))
	if _, err := Contract(a, b, 16); err == nil {
		t.Error("cap exceeded but contraction succeeded")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	data := make([]complex128, 16)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	a, _ := NewTensor([]int{3, 1, 4, 2}, data)
	b := a.transpose([]int{4, 2, 3, 1})
	c := b.transpose([]int{3, 1, 4, 2})
	for i := range data {
		if c.Data[i] != data[i] {
			t.Fatalf("transpose round trip failed at %d", i)
		}
	}
}

func TestAmplitudeBell(t *testing.T) {
	// H(0); CX(0,1) → (|00⟩+|11⟩)/√2.
	c := gatesim.NewCircuit(2).H(0).CX(0, 1)
	for _, h := range []Heuristic{GreedySize, GreedyFlops} {
		for x, want := range map[uint64]complex128{
			0b00: complex(1/math.Sqrt2, 0),
			0b01: 0,
			0b10: 0,
			0b11: complex(1/math.Sqrt2, 0),
		} {
			got, err := Amplitude(c, x, h, 0)
			if err != nil {
				t.Fatal(err)
			}
			if cmplx.Abs(got-want) > 1e-12 {
				t.Errorf("%v: ⟨%02b|Bell⟩ = %v, want %v", h, x, got, want)
			}
		}
	}
}

func TestAmplitudesMatchStatevectorOnQAOA(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 5
	ts := problems.LABSTerms(n)
	gamma := []float64{rng.Float64() - 0.5, rng.Float64() - 0.5}
	beta := []float64{rng.Float64() - 0.5, rng.Float64() - 0.5}
	circ, err := gatesim.BuildQAOA(n, ts, gamma, beta)
	if err != nil {
		t.Fatal(err)
	}
	sv, err := gatesim.NewEngine().Simulate(circ)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Heuristic{GreedySize, GreedyFlops} {
		for _, x := range []uint64{0, 3, 7, 12, 21, 30} {
			got, err := Amplitude(circ, x, h, 0)
			if err != nil {
				t.Fatalf("%v x=%d: %v", h, x, err)
			}
			if cmplx.Abs(got-sv[x]) > 1e-9 {
				t.Errorf("%v: amplitude(%05b) = %v, statevector %v", h, x, got, sv[x])
			}
		}
	}
}

func TestAmplitudesMatchOnRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		n := 3 + rng.Intn(3)
		circ := gatesim.NewCircuit(n)
		for i := 0; i < 25; i++ {
			switch rng.Intn(5) {
			case 0:
				circ.H(rng.Intn(n))
			case 1:
				circ.RX(rng.Intn(n), rng.Float64()*2)
			case 2:
				circ.RZ(rng.Intn(n), rng.Float64()*2)
			case 3:
				a := rng.Intn(n)
				circ.CX(a, (a+1+rng.Intn(n-1))%n)
			case 4:
				a := rng.Intn(n)
				circ.XY(a, (a+1+rng.Intn(n-1))%n, rng.Float64())
			}
		}
		sv, err := gatesim.NewEngine().Simulate(circ)
		if err != nil {
			t.Fatal(err)
		}
		x := uint64(rng.Intn(1 << uint(n)))
		got, err := Amplitude(circ, x, GreedySize, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(got-sv[x]) > 1e-9 {
			t.Fatalf("trial %d: amplitude %v, statevector %v", trial, got, sv[x])
		}
	}
}

func TestAmplitudeNormalization(t *testing.T) {
	// Σ_x |⟨x|ψ⟩|² = 1 over all bitstrings of a small QAOA circuit.
	n := 4
	circ, err := gatesim.BuildQAOA(n, problems.LABSTerms(n), []float64{0.4}, []float64{0.6})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for x := uint64(0); x < 1<<uint(n); x++ {
		a, err := Amplitude(circ, x, GreedyFlops, 0)
		if err != nil {
			t.Fatal(err)
		}
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("Σ|amplitude|² = %v", total)
	}
}

func TestPeakRankGrowsWithDepth(t *testing.T) {
	// The paper's observation: deeper QAOA ⇒ wider contraction. Peak
	// intermediate rank should not decrease from p=1 to p=3.
	n := 6
	ts := problems.LABSTerms(n)
	ranks := map[int]int{}
	for _, p := range []int{1, 3} {
		gamma := make([]float64, p)
		beta := make([]float64, p)
		for i := range gamma {
			gamma[i], beta[i] = 0.3, 0.5
		}
		circ, err := gatesim.BuildQAOA(n, ts, gamma, beta)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := FromCircuit(circ, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := nw.Contract(GreedySize); err != nil {
			t.Fatal(err)
		}
		ranks[p] = nw.PeakRank
	}
	if ranks[3] < ranks[1] {
		t.Errorf("peak rank fell with depth: p=1 %d, p=3 %d", ranks[1], ranks[3])
	}
}

func TestNetworkStatsAndCaps(t *testing.T) {
	circ, err := gatesim.BuildQAOA(6, problems.LABSTerms(6), []float64{0.3}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := FromCircuit(circ, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Contract(GreedySize); err != nil {
		t.Fatal(err)
	}
	if nw.PeakRank < 2 || nw.PeakRank > 12 {
		t.Errorf("peak rank %d implausible for n=6", nw.PeakRank)
	}
	if nw.TotalFlops <= 0 {
		t.Errorf("TotalFlops = %d", nw.TotalFlops)
	}
	// An absurdly small cap must fail, not OOM.
	nw2, err := FromCircuit(circ, 0)
	if err != nil {
		t.Fatal(err)
	}
	nw2.MaxSize = 2
	if _, err := nw2.Contract(GreedySize); err == nil {
		t.Error("tiny cap did not trigger an error")
	}
	// Empty network errors.
	empty := &Network{}
	if _, err := empty.Contract(GreedySize); err == nil {
		t.Error("empty network contracted")
	}
}

func TestFromCircuitRejectsInvalid(t *testing.T) {
	bad := gatesim.NewCircuit(2).CX(1, 1)
	if _, err := FromCircuit(bad, 0); err == nil {
		t.Error("invalid circuit accepted")
	}
}

func TestStatevectorAmplitudeAgreesWithCore(t *testing.T) {
	// Spot-check one amplitude against statevec's FWHT identity:
	// contraction of H-only circuit gives uniform amplitudes.
	n := 3
	circ := gatesim.NewCircuit(n)
	for q := 0; q < n; q++ {
		circ.H(q)
	}
	want := statevec.NewUniform(n)
	for x := uint64(0); x < 1<<uint(n); x++ {
		a, err := Amplitude(circ, x, GreedySize, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(a-want[x]) > 1e-12 {
			t.Errorf("amplitude(%03b) = %v, want %v", x, a, want[x])
		}
	}
}
