// Package tensornet is the tensor-network contraction baseline of the
// paper's Fig. 3 (the cuTensorNet / QTensor analogue). A circuit plus
// one output bitstring becomes a network of rank-r tensors over
// 2-dimensional (qubit) indices; a contraction-order heuristic picks
// pairwise contractions until a scalar — one probability amplitude —
// remains.
//
// Tensor networks shine on shallow circuits, where contracting across
// the qubit dimension keeps intermediates small. Deep QAOA circuits
// with dense, high-order phase operators (LABS) drive the contraction
// width toward n, at which point the method degenerates to worse than
// state-vector evolution — the behaviour the paper measures and this
// package reproduces. Two order heuristics are provided, standing in
// for the two TN baselines the paper benchmarks (QTensor's
// treewidth-style optimizer and cuTensorNet's default).
package tensornet

import (
	"fmt"
)

// Tensor is a dense complex tensor whose axes all have dimension 2
// (qubit wires). Labels names each axis; tensors sharing a label are
// contracted over it. Data is laid out with Labels[0] as the most
// significant bit of the flat index (C order).
type Tensor struct {
	Labels []int
	Data   []complex128
}

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.Labels) }

// Size returns the element count (2^rank).
func (t *Tensor) Size() int { return 1 << uint(len(t.Labels)) }

// NewTensor builds a tensor and checks the data length.
func NewTensor(labels []int, data []complex128) (*Tensor, error) {
	if len(data) != 1<<uint(len(labels)) {
		return nil, fmt.Errorf("tensornet: rank %d needs %d elements, got %d", len(labels), 1<<uint(len(labels)), len(data))
	}
	seen := map[int]bool{}
	for _, l := range labels {
		if seen[l] {
			return nil, fmt.Errorf("tensornet: repeated label %d on one tensor (traces not supported)", l)
		}
		seen[l] = true
	}
	return &Tensor{Labels: append([]int(nil), labels...), Data: data}, nil
}

// transpose returns the tensor with axes reordered so Labels matches
// newLabels (a permutation of the current labels).
func (t *Tensor) transpose(newLabels []int) *Tensor {
	r := t.Rank()
	if r <= 1 {
		return t
	}
	// pos[i] = axis of newLabels[i] in the current tensor.
	pos := make([]int, r)
	for i, nl := range newLabels {
		pos[i] = -1
		for j, l := range t.Labels {
			if l == nl {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			panic(fmt.Sprintf("tensornet: transpose label %d not present", nl))
		}
	}
	same := true
	for i := range pos {
		if pos[i] != i {
			same = false
			break
		}
	}
	if same {
		return t
	}
	out := make([]complex128, len(t.Data))
	// Bit i (from the top) of the new index is bit pos[i] (from the
	// top) of the old index.
	shifts := make([]uint, r)
	for i := range pos {
		shifts[i] = uint(r - 1 - pos[i])
	}
	for idx := range out {
		var old int
		for i := 0; i < r; i++ {
			bit := (idx >> uint(r-1-i)) & 1
			old |= bit << shifts[i]
		}
		out[idx] = t.Data[old]
	}
	return &Tensor{Labels: append([]int(nil), newLabels...), Data: out}
}

// Contract contracts a and b over all shared labels, returning a
// tensor whose labels are a's free labels followed by b's free labels.
// maxSize bounds the result's element count (0 disables the bound);
// exceeding it returns an error so runaway contractions fail fast
// instead of exhausting memory.
func Contract(a, b *Tensor, maxSize int) (*Tensor, error) {
	inB := map[int]bool{}
	for _, l := range b.Labels {
		inB[l] = true
	}
	var shared, freeA []int
	for _, l := range a.Labels {
		if inB[l] {
			shared = append(shared, l)
		} else {
			freeA = append(freeA, l)
		}
	}
	inShared := map[int]bool{}
	for _, l := range shared {
		inShared[l] = true
	}
	var freeB []int
	for _, l := range b.Labels {
		if !inShared[l] {
			freeB = append(freeB, l)
		}
	}
	fa, fb, s := len(freeA), len(freeB), len(shared)
	outLabels := append(append([]int(nil), freeA...), freeB...)
	if maxSize > 0 && fa+fb > 62 {
		return nil, fmt.Errorf("tensornet: contraction rank %d overflows", fa+fb)
	}
	outSize := 1 << uint(fa+fb)
	if maxSize > 0 && outSize > maxSize {
		return nil, fmt.Errorf("tensornet: intermediate tensor of 2^%d elements exceeds cap %d", fa+fb, maxSize)
	}
	// Matricize: A as [freeA × shared], B as [shared × freeB].
	am := a.transpose(append(append([]int(nil), freeA...), shared...))
	bm := b.transpose(append(append([]int(nil), shared...), freeB...))
	out := make([]complex128, outSize)
	sDim := 1 << uint(s)
	fbDim := 1 << uint(fb)
	for ia := 0; ia < 1<<uint(fa); ia++ {
		arow := am.Data[ia*sDim : (ia+1)*sDim]
		orow := out[ia*fbDim : (ia+1)*fbDim]
		for k := 0; k < sDim; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := bm.Data[k*fbDim : (k+1)*fbDim]
			for ib := 0; ib < fbDim; ib++ {
				orow[ib] += av * brow[ib]
			}
		}
	}
	return &Tensor{Labels: outLabels, Data: out}, nil
}

// sharedCount returns how many labels a and b share, used by the
// heuristics.
func sharedCount(a, b *Tensor) int {
	inA := map[int]bool{}
	for _, l := range a.Labels {
		inA[l] = true
	}
	c := 0
	for _, l := range b.Labels {
		if inA[l] {
			c++
		}
	}
	return c
}

// resultRank returns the rank of Contract(a, b) without contracting.
func resultRank(a, b *Tensor) int {
	s := sharedCount(a, b)
	return a.Rank() + b.Rank() - 2*s
}

// contractionFlops estimates the multiply count of Contract(a, b):
// 2^(freeA+freeB+shared).
func contractionFlops(a, b *Tensor) int {
	s := sharedCount(a, b)
	r := a.Rank() + b.Rank() - s
	if r > 62 {
		return 1 << 62
	}
	return 1 << uint(r)
}
