package tensornet

import (
	"fmt"

	"qokit/internal/gatesim"
)

// Heuristic selects the contraction order.
type Heuristic int

const (
	// GreedySize always contracts the pair producing the smallest
	// result tensor (the cuTensorNet-default analogue).
	GreedySize Heuristic = iota
	// GreedyFlops always contracts the pair with the cheapest single
	// contraction (the QTensor-style local-cost analogue).
	GreedyFlops
)

// String names the heuristic.
func (h Heuristic) String() string {
	switch h {
	case GreedySize:
		return "greedy-size"
	case GreedyFlops:
		return "greedy-flops"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Network is a set of tensors to be fully contracted.
type Network struct {
	Tensors []*Tensor
	// MaxSize caps intermediate tensor element counts (0 = 2^26). Deep
	// QAOA networks exceed any practical cap — that failure mode is
	// the baseline's documented behaviour, reported rather than fatal.
	MaxSize int
	// Stats accumulate over Contract.
	PeakRank   int
	TotalFlops int
}

// FromCircuit builds the network for the amplitude ⟨x|C|0…0⟩: per-
// qubit |0⟩ caps, one tensor per gate, and ⟨x_q| caps on the output
// wires.
func FromCircuit(c *gatesim.Circuit, x uint64) (*Network, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.N > 62 {
		return nil, fmt.Errorf("tensornet: n=%d too large", c.N)
	}
	nw := &Network{}
	next := 0
	fresh := func() int { next++; return next - 1 }
	wire := make([]int, c.N)
	for q := range wire {
		wire[q] = fresh()
		t, err := NewTensor([]int{wire[q]}, []complex128{1, 0}) // |0⟩
		if err != nil {
			return nil, err
		}
		nw.Tensors = append(nw.Tensors, t)
	}
	for _, g := range c.Gates {
		if g.IsTwoQubit() {
			u := gate4x4(g)
			o1, o2 := wire[g.Q1], wire[g.Q2]
			n1, n2 := fresh(), fresh()
			// Axis order [n1, n2, o1, o2]; statevec convention indexes
			// the matrix with row r = bit(q2)<<1 | bit(q1).
			data := make([]complex128, 16)
			for b1 := 0; b1 < 2; b1++ {
				for b2 := 0; b2 < 2; b2++ {
					for a1 := 0; a1 < 2; a1++ {
						for a2 := 0; a2 < 2; a2++ {
							idx := b1<<3 | b2<<2 | a1<<1 | a2
							data[idx] = u[b2<<1|b1][a2<<1|a1]
						}
					}
				}
			}
			t, err := NewTensor([]int{n1, n2, o1, o2}, data)
			if err != nil {
				return nil, err
			}
			nw.Tensors = append(nw.Tensors, t)
			wire[g.Q1], wire[g.Q2] = n1, n2
			continue
		}
		u := gate2x2(g)
		old := wire[g.Q1]
		nl := fresh()
		t, err := NewTensor([]int{nl, old}, []complex128{u[0][0], u[0][1], u[1][0], u[1][1]})
		if err != nil {
			return nil, err
		}
		nw.Tensors = append(nw.Tensors, t)
		wire[g.Q1] = nl
	}
	for q := 0; q < c.N; q++ {
		cap := []complex128{1, 0}
		if x>>uint(q)&1 == 1 {
			cap = []complex128{0, 1}
		}
		t, err := NewTensor([]int{wire[q]}, cap)
		if err != nil {
			return nil, err
		}
		nw.Tensors = append(nw.Tensors, t)
	}
	return nw, nil
}

// Contract reduces the network to a scalar with the given heuristic.
func (nw *Network) Contract(h Heuristic) (complex128, error) {
	maxSize := nw.MaxSize
	if maxSize <= 0 {
		maxSize = 1 << 26
	}
	ts := append([]*Tensor(nil), nw.Tensors...)
	if len(ts) == 0 {
		return 0, fmt.Errorf("tensornet: empty network")
	}
	for len(ts) > 1 {
		bi, bj := -1, -1
		best := int(^uint(0) >> 1)
		bestFlops := best
		// Prefer pairs that share labels; fall back to outer products
		// only when no connected pair remains.
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				if sharedCount(ts[i], ts[j]) == 0 {
					continue
				}
				var cost int
				switch h {
				case GreedyFlops:
					cost = contractionFlops(ts[i], ts[j])
				default:
					cost = resultRank(ts[i], ts[j])
				}
				flops := contractionFlops(ts[i], ts[j])
				if cost < best || (cost == best && flops < bestFlops) {
					best, bestFlops, bi, bj = cost, flops, i, j
				}
			}
		}
		if bi < 0 {
			// Disconnected components: contract the two smallest.
			bi, bj = 0, 1
			for i := 2; i < len(ts); i++ {
				if ts[i].Rank() < ts[bi].Rank() {
					bi = i
				} else if ts[i].Rank() < ts[bj].Rank() && i != bi {
					bj = i
				}
			}
			if bi > bj {
				bi, bj = bj, bi
			}
		}
		merged, err := Contract(ts[bi], ts[bj], maxSize)
		if err != nil {
			return 0, err
		}
		if merged.Rank() > nw.PeakRank {
			nw.PeakRank = merged.Rank()
		}
		nw.TotalFlops += contractionFlops(ts[bi], ts[bj])
		ts[bi] = merged
		ts = append(ts[:bj], ts[bj+1:]...)
	}
	if ts[0].Rank() != 0 {
		return 0, fmt.Errorf("tensornet: contraction left open labels %v", ts[0].Labels)
	}
	return ts[0].Data[0], nil
}

// Amplitude is the convenience entry point: build the network for
// ⟨x|C|0…0⟩ and contract it.
func Amplitude(c *gatesim.Circuit, x uint64, h Heuristic, maxSize int) (complex128, error) {
	nw, err := FromCircuit(c, x)
	if err != nil {
		return 0, err
	}
	nw.MaxSize = maxSize
	return nw.Contract(h)
}

func gate2x2(g gatesim.Gate) [2][2]complex128 {
	switch g.Kind {
	case gatesim.KindH, gatesim.KindRX, gatesim.KindRZ, gatesim.KindU1:
		return gatesim.GateMatrix1Q(g)
	default:
		panic(fmt.Sprintf("tensornet: gate %v is not single-qubit", g.Kind))
	}
}

func gate4x4(g gatesim.Gate) [4][4]complex128 {
	return gatesim.GateMatrix2Q(g)
}
