package statevec

import (
	"math"
	"math/rand"
	"testing"
)

// randState returns a random normalized n-qubit state.
func randState(rng *rand.Rand, n int) Vec {
	v := New(n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	v.Normalize()
	return v
}

// imDot returns Im ⟨a|b⟩ directly.
func imDot(a, b Vec) float64 { return imag(Dot(a, b)) }

// applyXRef returns X_q|v⟩ by explicit bit flip.
func applyXRef(v Vec, q int) Vec {
	out := New(v.NumQubits())
	for x := range v {
		out[x^(1<<uint(q))] = v[x]
	}
	return out
}

// applyXYRef returns H_e|v⟩ for H_e = (X_iX_j+Y_iY_j)/2, which swaps
// the 01/10 amplitude pairs and zeroes the rest.
func applyXYRef(v Vec, i, j int) Vec {
	out := New(v.NumQubits())
	mi, mj := uint64(1)<<uint(i), uint64(1)<<uint(j)
	for x := range v {
		bx := uint64(x)
		if bx&mi != 0 && bx&mj == 0 {
			out[bx^mi^mj] = v[x]
		} else if bx&mi == 0 && bx&mj != 0 {
			out[bx^mi^mj] = v[x]
		}
	}
	return out
}

// gradPool forces the parallel path regardless of state size
// (minParallel is zero for in-package composite literals).
func gradPool() *Pool { return &Pool{Workers: 4} }

func TestImDotDiagAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 5
	lam, psi := randState(rng, n), randState(rng, n)
	diag := make([]float64, 1<<n)
	for i := range diag {
		diag[i] = rng.NormFloat64()
	}
	cpsi := psi.Clone()
	MulDiag(cpsi, diag)
	want := imDot(lam, cpsi)

	if got := ImDotDiag(lam, psi, diag); math.Abs(got-want) > 1e-12 {
		t.Errorf("serial ImDotDiag = %v, want %v", got, want)
	}
	if got := gradPool().ImDotDiag(lam, psi, diag); math.Abs(got-want) > 1e-12 {
		t.Errorf("pool ImDotDiag = %v, want %v", got, want)
	}
	sl, sp := SoAFromVec(lam), SoAFromVec(psi)
	if got := sl.ImDotDiag(gradPool(), sp, diag); math.Abs(got-want) > 1e-12 {
		t.Errorf("SoA ImDotDiag = %v, want %v", got, want)
	}
	sl32, sp32 := SoA32FromVec(lam), SoA32FromVec(psi)
	if got := sl32.ImDotDiag(gradPool(), sp32, diag); math.Abs(got-want) > 1e-5 {
		t.Errorf("SoA32 ImDotDiag = %v, want %v", got, want)
	}
}

func TestMulDiagBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 5
	v := randState(rng, n)
	diag := make([]float64, 1<<n)
	for i := range diag {
		diag[i] = rng.NormFloat64()
	}
	want := v.Clone()
	MulDiag(want, diag)

	got := v.Clone()
	gradPool().MulDiag(got, diag)
	if d := MaxAbsDiff(want, got); d > 0 {
		t.Errorf("pool MulDiag differs by %v", d)
	}
	soa := SoAFromVec(v)
	soa.MulDiag(gradPool(), diag)
	if d := MaxAbsDiff(want, soa.ToVec()); d > 1e-15 {
		t.Errorf("SoA MulDiag differs by %v", d)
	}
	soa32 := SoA32FromVec(v)
	soa32.MulDiag(gradPool(), diag)
	if d := MaxAbsDiff(want, soa32.ToVec()); d > 1e-6 {
		t.Errorf("SoA32 MulDiag differs by %v", d)
	}
}

func TestImDotXAllAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const n = 5
	lam, psi := randState(rng, n), randState(rng, n)
	// Reference: Σ_q Im ⟨λ|X_q|ψ⟩ by explicit bit-flip application.
	var want float64
	for q := 0; q < n; q++ {
		want += imDot(lam, applyXRef(psi, q))
	}
	if got := ImDotXAll(lam, psi); math.Abs(got-want) > 1e-12 {
		t.Errorf("serial ImDotXAll = %v, want %v", got, want)
	}
	if got := gradPool().ImDotXAll(lam, psi); math.Abs(got-want) > 1e-12 {
		t.Errorf("pool ImDotXAll = %v, want %v", got, want)
	}
	sl, sp := SoAFromVec(lam), SoAFromVec(psi)
	if got := sl.ImDotXAll(gradPool(), sp); math.Abs(got-want) > 1e-12 {
		t.Errorf("SoA ImDotXAll = %v, want %v", got, want)
	}
	sl32, sp32 := SoA32FromVec(lam), SoA32FromVec(psi)
	if got := sl32.ImDotXAll(gradPool(), sp32); math.Abs(got-want) > 1e-5 {
		t.Errorf("SoA32 ImDotXAll = %v, want %v", got, want)
	}
}

func TestImDotXYAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n = 5
	lam, psi := randState(rng, n), randState(rng, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			want := imDot(lam, applyXYRef(psi, i, j))
			if got := ImDotXY(lam, psi, i, j); math.Abs(got-want) > 1e-12 {
				t.Errorf("serial ImDotXY (%d,%d): got %v, want %v", i, j, got, want)
			}
			if got := gradPool().ImDotXY(lam, psi, i, j); math.Abs(got-want) > 1e-12 {
				t.Errorf("pool ImDotXY (%d,%d): got %v, want %v", i, j, got, want)
			}
			sl, sp := SoAFromVec(lam), SoAFromVec(psi)
			if got := sl.ImDotXY(gradPool(), sp, i, j); math.Abs(got-want) > 1e-12 {
				t.Errorf("SoA ImDotXY (%d,%d): got %v, want %v", i, j, got, want)
			}
			sl32, sp32 := SoA32FromVec(lam), SoA32FromVec(psi)
			if got := sl32.ImDotXY(gradPool(), sp32, i, j); math.Abs(got-want) > 1e-5 {
				t.Errorf("SoA32 ImDotXY (%d,%d): got %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSoACopy(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	v := randState(rng, 4)
	src := SoAFromVec(v)
	dst := NewSoA(4)
	dst.Copy(src)
	if d := MaxAbsDiff(v, dst.ToVec()); d != 0 {
		t.Errorf("SoA Copy differs by %v", d)
	}
	src32 := SoA32FromVec(v)
	dst32 := NewSoA32(4)
	dst32.Copy(src32)
	if d := MaxAbsDiff(src32.ToVec(), dst32.ToVec()); d != 0 {
		t.Errorf("SoA32 Copy differs by %v", d)
	}
}

func TestImDotXRangeAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 6
	lam, psi := randState(rng, n), randState(rng, n)
	for _, r := range [][2]int{{0, n}, {0, 3}, {3, 6}, {2, 5}, {4, 4}} {
		lo, hi := r[0], r[1]
		var want float64
		for q := lo; q < hi; q++ {
			want += imDot(lam, applyXRef(psi, q))
		}
		got := ImDotXRange(lam, psi, lo, hi)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("range [%d,%d): got %v, want %v", lo, hi, got, want)
		}
	}
	// The full range must agree with the fused all-qubit kernel.
	if a, b := ImDotXRange(lam, psi, 0, n), ImDotXAll(lam, psi); math.Abs(a-b) > 1e-12 {
		t.Errorf("ImDotXRange(0,n)=%v != ImDotXAll=%v", a, b)
	}
}

func TestImDotXRangePanics(t *testing.T) {
	lam, psi := New(3), New(3)
	for _, r := range [][2]int{{-1, 2}, {0, 4}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range [%d,%d) did not panic", r[0], r[1])
				}
			}()
			ImDotXRange(lam, psi, r[0], r[1])
		}()
	}
}

// TestSoA32ImDotXRange checks the single-precision range reduction
// against the complex128 ImDotXRange on the same (rounded) states: the
// SoA32 kernel accumulates in float64, so the only deviation is the
// float32 rounding of the inputs themselves.
func TestSoA32ImDotXRange(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 7
	lam64 := randState(rng, n)
	psi64 := randState(rng, n)
	lam32 := SoA32FromVec(lam64)
	psi32 := SoA32FromVec(psi64)
	// Evaluate the reference on the rounded values so the comparison
	// isolates the kernel, not the storage precision.
	lamR := lam32.ToVec()
	psiR := psi32.ToVec()
	p := NewPool(2)
	for _, r := range [][2]int{{0, n}, {0, 3}, {3, n}, {5, 5}, {2, 4}} {
		want := ImDotXRange(lamR, psiR, r[0], r[1])
		got := lam32.ImDotXRange(p, psi32, r[0], r[1])
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("range [%d,%d): SoA32 %v, complex128 %v", r[0], r[1], got, want)
		}
	}
	// Full range must agree with ImDotXAll on both representations.
	if got, want := lam32.ImDotXRange(p, psi32, 0, n), lam32.ImDotXAll(p, psi32); math.Abs(got-want) > 1e-12 {
		t.Errorf("full range %v != ImDotXAll %v", got, want)
	}
}
