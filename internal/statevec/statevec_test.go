package statevec

import (
	"math"
	"math/bits"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func randomState(rng *rand.Rand, n int) Vec {
	v := New(n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	v.Normalize()
	return v
}

func TestConstructors(t *testing.T) {
	u := NewUniform(3)
	if len(u) != 8 {
		t.Fatalf("len = %d", len(u))
	}
	if math.Abs(u.Norm()-1) > tol {
		t.Errorf("uniform norm = %v", u.Norm())
	}
	for _, a := range u {
		if cmplx.Abs(a-complex(1/math.Sqrt(8), 0)) > tol {
			t.Errorf("uniform amplitude %v", a)
		}
	}
	b := NewBasis(3, 5)
	for i, a := range b {
		want := complex128(0)
		if i == 5 {
			want = 1
		}
		if a != want {
			t.Errorf("basis[%d] = %v", i, a)
		}
	}
	if NewZeroCheck := New(2); len(NewZeroCheck) != 4 || NewZeroCheck.Norm() != 0 {
		t.Error("New(2) not zero vector")
	}
}

func TestDicke(t *testing.T) {
	d := NewDicke(4, 2)
	if math.Abs(d.Norm()-1) > tol {
		t.Fatalf("Dicke norm = %v", d.Norm())
	}
	count := 0
	for x, a := range d {
		w := bits.OnesCount(uint(x))
		if w == 2 {
			count++
			if cmplx.Abs(a-complex(1/math.Sqrt(6), 0)) > tol {
				t.Errorf("Dicke amp at %04b = %v", x, a)
			}
		} else if a != 0 {
			t.Errorf("Dicke support leak at %04b", x)
		}
	}
	if count != 6 {
		t.Errorf("Dicke support size %d, want 6", count)
	}
	// Extremes: k=0 is |0..0⟩, k=n is |1..1⟩.
	if d0 := NewDicke(3, 0); d0[0] != 1 {
		t.Error("Dicke(3,0) != |000⟩")
	}
	if dn := NewDicke(3, 3); dn[7] != 1 {
		t.Error("Dicke(3,3) != |111⟩")
	}
}

func TestNumQubitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	Vec(make([]complex128, 3)).NumQubits()
}

func TestDotAndExpectation(t *testing.T) {
	a := Vec{1, 0, 0, 0}
	b := Vec{0.5, 0.5, 0.5, 0.5}
	if got := Dot(a, b); cmplx.Abs(got-0.5) > tol {
		t.Errorf("Dot = %v, want 0.5", got)
	}
	// ⟨a|b⟩ = conj(⟨b|a⟩)
	rng := rand.New(rand.NewSource(2))
	x, y := randomState(rng, 4), randomState(rng, 4)
	if d1, d2 := Dot(x, y), Dot(y, x); cmplx.Abs(d1-conj(d2)) > tol {
		t.Errorf("Dot not conjugate-symmetric: %v vs %v", d1, d2)
	}
	diag := []float64{1, 2, 3, 4}
	if got := ExpectationDiag(b, diag); math.Abs(got-2.5) > tol {
		t.Errorf("ExpectationDiag = %v, want 2.5", got)
	}
}

func TestOverlapStates(t *testing.T) {
	v := Vec{complex(0.5, 0), complex(0, 0.5), complex(0.5, 0), complex(0, 0.5)}
	if got := OverlapStates(v, []uint64{1, 3}); math.Abs(got-0.5) > tol {
		t.Errorf("OverlapStates = %v, want 0.5", got)
	}
}

func TestApplySU2AgainstDirectMatrix(t *testing.T) {
	// For random SU(2) blocks and qubits, compare Algorithm 1 against
	// naive per-amplitude matrix application.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		q := rng.Intn(n)
		theta, phi := rng.Float64()*math.Pi, rng.Float64()*2*math.Pi
		a := complex(math.Cos(theta), 0)
		b := complex(math.Sin(theta)*math.Cos(phi), math.Sin(theta)*math.Sin(phi))
		v := randomState(rng, n)
		want := make(Vec, len(v))
		for x := range v {
			if x>>uint(q)&1 == 0 {
				x2 := x | 1<<uint(q)
				want[x] = a*v[x] - conj(b)*v[x2]
				want[x2] = b*v[x] + conj(a)*v[x2]
			}
		}
		got := v.Clone()
		ApplySU2(got, q, a, b)
		if d := MaxAbsDiff(got, want); d > tol {
			t.Fatalf("trial %d (n=%d q=%d): max diff %g", trial, n, q, d)
		}
	}
}

func TestApplyRXUnitaryAndPeriodic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := randomState(rng, 5)
	w := v.Clone()
	ApplyRX(w, 2, 0.7)
	if math.Abs(w.Norm()-1) > tol {
		t.Errorf("RX broke norm: %v", w.Norm())
	}
	// RX(β) then RX(−β) = identity.
	ApplyRX(w, 2, -0.7)
	if d := MaxAbsDiff(w, v); d > tol {
		t.Errorf("RX inverse failed: %g", d)
	}
	// RX(2π) = identity (e^{-i2πX} has eigenvalues e^{∓2πi} = 1).
	w2 := v.Clone()
	ApplyRX(w2, 0, 2*math.Pi)
	if d := MaxAbsDiff(w2, v); d > 1e-10 {
		t.Errorf("RX(2π) ≠ I: %g", d)
	}
}

func TestRXEqualsHRZH(t *testing.T) {
	// e^{−iβX} = H e^{−iβZ} H: check Algorithm 1's RX against the
	// Hadamard-conjugated diagonal rotation.
	rng := rand.New(rand.NewSource(5))
	n, q, beta := 4, 1, 0.37
	v := randomState(rng, n)
	viaRX := v.Clone()
	ApplyRX(viaRX, q, beta)

	h := [2][2]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	rz := [2][2]complex128{
		{cmplx.Exp(complex(0, -beta)), 0},
		{0, cmplx.Exp(complex(0, beta))},
	}
	viaH := v.Clone()
	Apply1Q(viaH, q, h)
	Apply1Q(viaH, q, rz)
	Apply1Q(viaH, q, h)
	if d := MaxAbsDiff(viaRX, viaH); d > tol {
		t.Errorf("RX vs H·RZ·H: %g", d)
	}
}

func TestUniformRXAtHalfPiIsBitflipTimesPhase(t *testing.T) {
	// e^{−i(π/2)X} = −iX, so the full mixer at β = π/2 maps amplitude
	// x to (−i)^n times the amplitude at the complement of x.
	n := 4
	rng := rand.New(rand.NewSource(6))
	v := randomState(rng, n)
	w := v.Clone()
	ApplyUniformRX(w, math.Pi/2)
	phase := cmplx.Pow(complex(0, -1), complex(float64(n), 0))
	full := len(v) - 1
	for x := range v {
		want := phase * v[x^full]
		if cmplx.Abs(w[x]-want) > 1e-10 {
			t.Fatalf("x=%04b: got %v, want %v", x, w[x], want)
		}
	}
}

func TestApplyUniformSU2MatchesPerQubit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 4
	as := make([]complex128, n)
	bs := make([]complex128, n)
	for i := range as {
		th := rng.Float64()
		as[i] = complex(math.Cos(th), 0)
		bs[i] = complex(0, -math.Sin(th))
	}
	v := randomState(rng, n)
	w1 := v.Clone()
	ApplyUniformSU2(w1, as, bs)
	w2 := v.Clone()
	for q := 0; q < n; q++ {
		ApplySU2(w2, q, as[q], bs[q])
	}
	if d := MaxAbsDiff(w1, w2); d > tol {
		t.Errorf("uniform vs per-qubit: %g", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong coefficient count")
		}
	}()
	ApplyUniformSU2(v, as[:2], bs[:2])
}

func TestApplyXYPreservesHammingWeightSectors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 5
	v := randomState(rng, n)
	sector := func(u Vec) []float64 {
		w := make([]float64, n+1)
		for x, a := range u {
			w[bits.OnesCount(uint(x))] += real(a)*real(a) + imag(a)*imag(a)
		}
		return w
	}
	before := sector(v)
	ApplyXY(v, 1, 3, 0.9)
	ApplyXY(v, 4, 0, 1.3)
	after := sector(v)
	for k := range before {
		if math.Abs(before[k]-after[k]) > tol {
			t.Errorf("weight-%d sector changed: %v -> %v", k, before[k], after[k])
		}
	}
	if math.Abs(v.Norm()-1) > tol {
		t.Errorf("XY broke norm: %v", v.Norm())
	}
}

func TestApplyXYAgainstExplicitMatrix(t *testing.T) {
	// On 2 qubits, e^{−iβ(XX+YY)/2} in basis {00,01,10,11} is
	// identity except the middle 2×2 block [[c, −is], [−is, c]].
	beta := 0.61
	s, c := math.Sin(beta), math.Cos(beta)
	u := [4][4]complex128{
		{1, 0, 0, 0},
		{0, complex(c, 0), complex(0, -s), 0},
		{0, complex(0, -s), complex(c, 0), 0},
		{0, 0, 0, 1},
	}
	rng := rand.New(rand.NewSource(9))
	v := randomState(rng, 2)
	want := v.Clone()
	Apply2Q(want, 0, 1, u)
	got := v.Clone()
	ApplyXY(got, 0, 1, beta)
	if d := MaxAbsDiff(got, want); d > tol {
		t.Errorf("XY vs explicit 4×4: %g", d)
	}
	// And with swapped qubit order (operator is symmetric).
	got2 := v.Clone()
	ApplyXY(got2, 1, 0, beta)
	if d := MaxAbsDiff(got2, want); d > tol {
		t.Errorf("XY qubit order dependence: %g", d)
	}
}

func TestApply2QCNOT(t *testing.T) {
	// CNOT with control q0, target q1: |01⟩↔|11⟩ (q0 is low bit).
	cnot := [4][4]complex128{
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
	}
	v := NewBasis(2, 0b01) // q0=1, q1=0
	Apply2Q(v, 0, 1, cnot)
	if cmplx.Abs(v[0b11]-1) > tol {
		t.Fatalf("CNOT|01⟩: %v", v)
	}
	v2 := NewBasis(2, 0b10) // q0=0 → no flip
	Apply2Q(v2, 0, 1, cnot)
	if cmplx.Abs(v2[0b10]-1) > tol {
		t.Fatalf("CNOT|10⟩: %v", v2)
	}
}

func TestApply2QOnNonAdjacentQubits(t *testing.T) {
	// SWAP on qubits (0, 2) of a 3-qubit basis state.
	swap := [4][4]complex128{
		{1, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
	}
	v := NewBasis(3, 0b001) // q0=1
	Apply2Q(v, 0, 2, swap)
	if cmplx.Abs(v[0b100]-1) > tol {
		t.Fatalf("SWAP(0,2)|001⟩ = %v", v)
	}
}

func TestFWHTInvolutionAndParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	v := randomState(rng, 6)
	w := v.Clone()
	FWHT(w)
	if math.Abs(w.Norm()-1) > tol {
		t.Errorf("FWHT broke norm (Parseval): %v", w.Norm())
	}
	FWHT(w)
	if d := MaxAbsDiff(w, v); d > tol {
		t.Errorf("FWHT involution failed: %g", d)
	}
	// H^⊗n |0⟩ = uniform superposition.
	z := NewBasis(3, 0)
	FWHT(z)
	if d := MaxAbsDiff(z, NewUniform(3)); d > tol {
		t.Errorf("FWHT|0⟩ ≠ |+⟩^n: %g", d)
	}
}

func TestPhaseDiagPreservesProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := randomState(rng, 5)
	diag := make([]float64, len(v))
	for i := range diag {
		diag[i] = rng.NormFloat64() * 3
	}
	before := v.Probabilities(nil)
	PhaseDiag(v, diag, 0.83)
	after := v.Probabilities(nil)
	for i := range before {
		if math.Abs(before[i]-after[i]) > tol {
			t.Fatalf("probability %d changed: %v -> %v", i, before[i], after[i])
		}
	}
}

func TestPhaseDiagExactOnBasis(t *testing.T) {
	v := NewBasis(2, 3)
	diag := []float64{0, 0, 0, 2}
	PhaseDiag(v, diag, math.Pi/4) // phase e^{−iπ/2} = −i
	if cmplx.Abs(v[3]-complex(0, -1)) > tol {
		t.Errorf("amplitude %v, want −i", v[3])
	}
}

func TestMixerViaFWHTEqualsAlgorithm2(t *testing.T) {
	// Ref. [43]'s method: e^{−iβΣX} = H^⊗n e^{−iβΣZ} H^⊗n, where the
	// diagonal of ΣZ_i at x is n − 2·popcount(x). The paper notes this
	// costs two transforms; Algorithm 2 does it in one pass. Both must
	// agree exactly.
	rng := rand.New(rand.NewSource(12))
	n, beta := 6, 0.47
	v := randomState(rng, n)
	direct := v.Clone()
	ApplyUniformRX(direct, beta)

	viaF := v.Clone()
	FWHT(viaF)
	diag := make([]float64, len(v))
	for x := range diag {
		diag[x] = float64(n - 2*bits.OnesCount(uint(x)))
	}
	PhaseDiag(viaF, diag, beta)
	FWHT(viaF)
	if d := MaxAbsDiff(direct, viaF); d > 1e-10 {
		t.Errorf("Algorithm 2 vs FWHT-diagonal-FWHT: %g", d)
	}
}

func TestPoolKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p := NewPool(workers)
		p.minParallel = 1 // force parallel paths even on tiny states
		n := 6
		v := randomState(rng, n)
		diag := make([]float64, len(v))
		for i := range diag {
			diag[i] = rng.NormFloat64()
		}

		serial := v.Clone()
		pooled := v.Clone()
		ApplySU2(serial, 3, complex(0.6, 0), complex(0, -0.8))
		p.ApplySU2(pooled, 3, complex(0.6, 0), complex(0, -0.8))
		if d := MaxAbsDiff(serial, pooled); d > tol {
			t.Fatalf("workers=%d ApplySU2 mismatch: %g", workers, d)
		}

		ApplyUniformRX(serial, 0.9)
		p.ApplyUniformRX(pooled, 0.9)
		if d := MaxAbsDiff(serial, pooled); d > tol {
			t.Fatalf("workers=%d UniformRX mismatch: %g", workers, d)
		}

		ApplyXY(serial, 1, 4, 1.1)
		p.ApplyXY(pooled, 1, 4, 1.1)
		if d := MaxAbsDiff(serial, pooled); d > tol {
			t.Fatalf("workers=%d XY mismatch: %g", workers, d)
		}

		PhaseDiag(serial, diag, 0.33)
		p.PhaseDiag(pooled, diag, 0.33)
		if d := MaxAbsDiff(serial, pooled); d > tol {
			t.Fatalf("workers=%d PhaseDiag mismatch: %g", workers, d)
		}

		if a, b := ExpectationDiag(serial, diag), p.ExpectationDiag(pooled, diag); math.Abs(a-b) > 1e-10 {
			t.Fatalf("workers=%d expectation mismatch: %v vs %v", workers, a, b)
		}
		if a, b := serial.Norm(), math.Sqrt(p.NormSquared(pooled)); math.Abs(a-b) > 1e-10 {
			t.Fatalf("workers=%d norm mismatch: %v vs %v", workers, a, b)
		}

		fa, fb := serial.Clone(), pooled.Clone()
		FWHT(fa)
		p.FWHT(fb)
		if d := MaxAbsDiff(fa, fb); d > tol {
			t.Fatalf("workers=%d FWHT mismatch: %g", workers, d)
		}
	}
}

func TestPoolGenericGatesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := NewPool(3)
	p.minParallel = 1
	n := 6
	v := randomState(rng, n)
	u1 := [2][2]complex128{
		{complex(0.6, 0.1), complex(-0.2, 0.3)},
		{complex(0.4, -0.5), complex(0.7, 0.2)},
	}
	var u2 [4][4]complex128
	for i := range u2 {
		for j := range u2[i] {
			u2[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	serial := v.Clone()
	pooled := v.Clone()
	Apply1Q(serial, 2, u1)
	p.Apply1Q(pooled, 2, u1)
	if d := MaxAbsDiff(serial, pooled); d > tol {
		t.Fatalf("pool Apply1Q differs: %g", d)
	}
	Apply2Q(serial, 1, 4, u2)
	p.Apply2Q(pooled, 1, 4, u2)
	if d := MaxAbsDiff(serial, pooled); d > tol {
		t.Fatalf("pool Apply2Q differs: %g", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("pool Apply2Q same-qubit accepted")
		}
	}()
	p.Apply2Q(pooled, 3, 3, u2)
}

func TestSoAKernelsMatchAoS(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := NewPool(2)
	p.minParallel = 1
	n := 6
	v := randomState(rng, n)
	diag := make([]float64, len(v))
	for i := range diag {
		diag[i] = rng.NormFloat64() * 2
	}

	aos := v.Clone()
	soa := SoAFromVec(v)

	ApplyUniformRX(aos, 0.71)
	soa.ApplyUniformRX(p, 0.71)
	if d := MaxAbsDiff(aos, soa.ToVec()); d > tol {
		t.Fatalf("SoA UniformRX mismatch: %g", d)
	}

	ApplyXY(aos, 0, 3, 0.42)
	soa.ApplyXY(p, 0, 3, 0.42)
	if d := MaxAbsDiff(aos, soa.ToVec()); d > tol {
		t.Fatalf("SoA XY mismatch: %g", d)
	}

	PhaseDiag(aos, diag, 1.21)
	soa.PhaseDiag(p, diag, 1.21)
	if d := MaxAbsDiff(aos, soa.ToVec()); d > tol {
		t.Fatalf("SoA PhaseDiag mismatch: %g", d)
	}

	if a, b := ExpectationDiag(aos, diag), soa.ExpectationDiag(p, diag); math.Abs(a-b) > 1e-10 {
		t.Fatalf("SoA expectation mismatch: %v vs %v", a, b)
	}
	if a, b := aos.Norm()*aos.Norm(), soa.NormSquared(p); math.Abs(a-b) > 1e-10 {
		t.Fatalf("SoA norm² mismatch: %v vs %v", a, b)
	}
	pa, pb := aos.Probabilities(nil), soa.Probabilities(nil)
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > tol {
			t.Fatalf("SoA probabilities mismatch at %d", i)
		}
	}
}

func TestSoAPhaseFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := NewPool(1)
	v := randomState(rng, 4)
	diag := make([]float64, len(v))
	cosT := make([]float64, len(v))
	sinT := make([]float64, len(v))
	gamma := 0.55
	for i := range diag {
		diag[i] = rng.NormFloat64()
		sinT[i], cosT[i] = math.Sincos(-gamma * diag[i])
	}
	a := SoAFromVec(v)
	b := SoAFromVec(v)
	a.PhaseDiag(p, diag, gamma)
	b.PhaseFactors(p, cosT, sinT)
	if d := MaxAbsDiff(a.ToVec(), b.ToVec()); d > tol {
		t.Errorf("PhaseFactors vs PhaseDiag: %g", d)
	}
}

func TestNewUniformSoA(t *testing.T) {
	a := NewSoAUniform(5).ToVec()
	b := NewUniform(5)
	if d := MaxAbsDiff(a, b); d > tol {
		t.Errorf("NewSoAUniform mismatch: %g", d)
	}
}

// Property (testing/quick): any mixer sweep preserves the norm.
func TestQuickMixerUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	v := randomState(rng, 6)
	f := func(rawBeta int8) bool {
		beta := float64(rawBeta) / 16
		w := v.Clone()
		ApplyUniformRX(w, beta)
		return math.Abs(w.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): mixer applications with different angles
// on the same qubit commute and compose additively.
func TestQuickRXAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	v := randomState(rng, 4)
	f := func(a8, b8 int8) bool {
		a, b := float64(a8)/20, float64(b8)/20
		w1 := v.Clone()
		ApplyRX(w1, 2, a)
		ApplyRX(w1, 2, b)
		w2 := v.Clone()
		ApplyRX(w2, 2, a+b)
		return MaxAbsDiff(w1, w2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidationPanics(t *testing.T) {
	v := New(3)
	for name, fn := range map[string]func(){
		"SU2 bad qubit":       func() { ApplySU2(v, 3, 1, 0) },
		"SU2 negative qubit":  func() { ApplySU2(v, -1, 1, 0) },
		"XY same qubit":       func() { ApplyXY(v, 1, 1, 0.2) },
		"XY out of range":     func() { ApplyXY(v, 0, 9, 0.2) },
		"2Q same qubit":       func() { Apply2Q(v, 2, 2, [4][4]complex128{}) },
		"PhaseDiag mismatch":  func() { PhaseDiag(v, []float64{1}, 0.1) },
		"Dot mismatch":        func() { Dot(v, New(2)) },
		"Expectation bad len": func() { ExpectationDiag(v, []float64{1, 2}) },
		"Dicke bad k":         func() { NewDicke(3, 4) },
		"basis out of range":  func() { NewBasis(2, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
