package statevec

import (
	"math"
	"math/bits"
)

// This file holds the fast Walsh–Hadamard transform and the
// FWHT-based transverse-field mixer route.
//
// The textbook FWHT streams the whole 2^n vector once per butterfly
// stage — n full memory traversals. That is exactly the access pattern
// the paper's §III-B criticizes in the serial Python simulator, and at
// n ≥ 20 the state no longer fits in cache, so every stage pays DRAM
// bandwidth. Two restructurings cut the traversal count:
//
//   - Low stages (stride < blockLen) are applied block-by-block: an
//     aligned block of blockLen amplitudes contains both endpoints of
//     every low-stage butterfly, so one cache residency retires all
//     log2(blockLen) low stages. The per-pair arithmetic is identical
//     to the per-stage order, so results are bit-equal.
//   - High stages (stride ≥ blockLen) necessarily stream the vector;
//     they are paired radix-4 so each traversal retires two stages
//     (normalizing by 1/2 instead of 1/√2 twice — equal up to
//     rounding).
//
// A full transform therefore costs 1 + ⌈(n − log2 blockLen)/2⌉
// traversals instead of n. Block lengths target ≈256 KiB of state —
// comfortably inside L2 — per element type.
const (
	fwhtBlockComplex = 1 << 14 // complex128: 16 B/amplitude → 256 KiB
	fwhtBlockFloat64 = 1 << 15 // float64 plane: 8 B → 256 KiB
	fwhtBlockFloat32 = 1 << 16 // float32 plane: 4 B → 256 KiB
)

// fwhtElem covers every element type the transform runs on. The
// Walsh–Hadamard butterfly is real-linear, so the split-layout (SoA)
// states transform as two independent real FWHTs over the Re and Im
// planes; one generic implementation serves all three.
type fwhtElem interface {
	~float32 | ~float64 | ~complex128
}

const invSqrt2 = 1 / math.Sqrt2

// FWHT applies the normalized fast Walsh–Hadamard transform H^⊗n in
// place. Applying it twice recovers the input (H is an involution).
// The paper's §III-B notes the mixer at β = π/2 is exactly this
// transform; ApplyUniformRXViaFWHT builds the general-β mixer from it.
func FWHT(v Vec) { fwhtSerial(v, fwhtBlockComplex) }

// FWHT is the pool version of the transform. Below the pool's inline
// threshold it falls back to the serial transform outright — the old
// per-stage fan-out spawned a parallel Run per butterfly stage, whose
// goroutine overhead dwarfs the work on tiny states.
func (p *Pool) FWHT(v Vec) { fwhtPool(p, v, fwhtBlockComplex) }

// fwhtSerial is the cache-blocked serial transform over any element
// type; blockLen must be a power of two (callers pass the per-type
// constants; tests shrink it to exercise the high-stage code).
func fwhtSerial[T fwhtElem](v []T, blockLen int) {
	n := numQubits(len(v))
	if n == 0 {
		return
	}
	if blockLen > len(v) {
		blockLen = len(v)
	}
	low := numQubits(blockLen)
	for base := 0; base < len(v); base += blockLen {
		fwhtLowStages(v[base:base+blockLen], low)
	}
	fwhtHighStages(v, low, n)
}

// fwhtPool is the worker-pool blocked transform: blocks are the work
// items of the low-stage pass (coarse items, so the split threshold is
// taken on total elements via runWork), and each high-stage traversal
// parallelizes over its butterfly index space.
func fwhtPool[T fwhtElem](p *Pool, v []T, blockLen int) {
	if p == nil || p.Workers <= 1 || len(v) < p.minParallel {
		fwhtSerial(v, blockLen)
		return
	}
	n := numQubits(len(v))
	if blockLen > len(v) {
		blockLen = len(v)
	}
	low := numQubits(blockLen)
	blocks := len(v) / blockLen
	p.runWork(blocks, blockLen, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			fwhtLowStages(v[b*blockLen:(b+1)*blockLen], low)
		}
	})
	q := low
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(v)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i0 := (t>>uint(q))<<uint(q+2) | (t & mask)
				fwhtRadix4(v, i0, stride)
			}
		})
	}
	if q < n {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(v)/2, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				l1 := (t>>uint(q))<<uint(q+1) | (t & mask)
				l2 := l1 + stride
				y1, y2 := v[l1], v[l2]
				v[l1] = (y1 + y2) * T(invSqrt2)
				v[l2] = (y1 - y2) * T(invSqrt2)
			}
		})
	}
}

// fwhtLowStages applies butterfly stages 0..stages−1 within one
// aligned block. Every pair at stride < len(blk) has both endpoints in
// the block, so the stages compose without leaving cache.
func fwhtLowStages[T fwhtElem](blk []T, stages int) {
	for q := 0; q < stages; q++ {
		stride := 1 << uint(q)
		for base := 0; base < len(blk); base += 2 * stride {
			for off := 0; off < stride; off++ {
				l1 := base + off
				l2 := l1 + stride
				y1, y2 := blk[l1], blk[l2]
				blk[l1] = (y1 + y2) * T(invSqrt2)
				blk[l2] = (y1 - y2) * T(invSqrt2)
			}
		}
	}
}

// fwhtHighStages applies stages from..n−1 over the full vector,
// radix-4-paired so each traversal retires two stages; a trailing
// unpaired stage runs as a plain butterfly pass.
func fwhtHighStages[T fwhtElem](v []T, from, n int) {
	q := from
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		for base := 0; base < len(v); base += 4 * stride {
			for off := 0; off < stride; off++ {
				fwhtRadix4(v, base+off, stride)
			}
		}
	}
	if q < n {
		stride := 1 << uint(q)
		for base := 0; base < len(v); base += 2 * stride {
			for off := 0; off < stride; off++ {
				l1 := base + off
				l2 := l1 + stride
				y1, y2 := v[l1], v[l2]
				v[l1] = (y1 + y2) * T(invSqrt2)
				v[l2] = (y1 - y2) * T(invSqrt2)
			}
		}
	}
}

// fwhtRadix4 applies stages q and q+1 (strides s and 2s) to one
// quadruple in a single read-modify-write: the composition of the two
// butterflies with the two 1/√2 factors merged into one 1/2.
func fwhtRadix4[T fwhtElem](v []T, i0, s int) {
	i1 := i0 + s
	i2 := i0 + 2*s
	i3 := i0 + 3*s
	y0, y1, y2, y3 := v[i0], v[i1], v[i2], v[i3]
	a0, a1 := y0+y1, y0-y1
	b0, b1 := y2+y3, y2-y3
	v[i0] = (a0 + b0) * T(0.5)
	v[i1] = (a1 + b1) * T(0.5)
	v[i2] = (a0 - b0) * T(0.5)
	v[i3] = (a1 - b1) * T(0.5)
}

// mixerPhaseTables returns cos/sin of −β·(n−2k) for k = 0..n: the
// Walsh-basis eigenphases of the transverse-field mixer. Conjugating
// by H^⊗n turns ΣX into ΣZ, whose eigenvalue on |x⟩ is n − 2·popcount(x),
// so e^{−iβΣX} = H^⊗n · diag(e^{−iβ(n−2|x|)}) · H^⊗n.
func mixerPhaseTables(n int, beta float64) (cosT, sinT []float64) {
	cosT = make([]float64, n+1)
	sinT = make([]float64, n+1)
	for k := 0; k <= n; k++ {
		s, c := math.Sincos(-beta * float64(n-2*k))
		cosT[k], sinT[k] = c, s
	}
	return cosT, sinT
}

// ApplyUniformRXViaFWHT applies the transverse-field mixer e^{−iβΣX_i}
// through the Walsh–Hadamard route: forward transform, popcount-indexed
// diagonal phase, inverse transform. With the blocked FWHT this costs
// ≈ 3 + (n − log2 blockLen) full traversals independent of how the
// sweep route scales with n, so it wins when per-qubit sweeps dominate;
// core.Simulator calibrates the crossover per (n, workers).
func ApplyUniformRXViaFWHT(v Vec, beta float64) {
	n := v.NumQubits()
	cosT, sinT := mixerPhaseTables(n, beta)
	fwhtSerial(v, fwhtBlockComplex)
	for i := range v {
		k := bits.OnesCount(uint(i))
		v[i] *= complex(cosT[k], sinT[k])
	}
	fwhtSerial(v, fwhtBlockComplex)
}

// ApplyUniformRXViaFWHT is the pool version of the Walsh–Hadamard
// mixer route.
func (p *Pool) ApplyUniformRXViaFWHT(v Vec, beta float64) {
	n := v.NumQubits()
	cosT, sinT := mixerPhaseTables(n, beta)
	fwhtPool(p, v, fwhtBlockComplex)
	p.Run(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := bits.OnesCount(uint(i))
			v[i] *= complex(cosT[k], sinT[k])
		}
	})
	fwhtPool(p, v, fwhtBlockComplex)
}

// ApplyUniformRXViaFWHT is the split-layout Walsh–Hadamard mixer: the
// transform is real-linear, so the Re and Im planes transform
// independently and only the popcount phase mixes them.
func (s *SoA) ApplyUniformRXViaFWHT(p *Pool, beta float64) {
	n := s.NumQubits()
	cosT, sinT := mixerPhaseTables(n, beta)
	re, im := s.Re, s.Im
	fwhtPool(p, re, fwhtBlockFloat64)
	fwhtPool(p, im, fwhtBlockFloat64)
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := bits.OnesCount(uint(i))
			cs, sn := cosT[k], sinT[k]
			r, m := re[i], im[i]
			re[i] = r*cs - m*sn
			im[i] = r*sn + m*cs
		}
	})
	fwhtPool(p, re, fwhtBlockFloat64)
	fwhtPool(p, im, fwhtBlockFloat64)
}

// ApplyUniformRXViaFWHT is the single-precision split-layout route;
// phase tables are evaluated in float64 and rounded once.
func (s *SoA32) ApplyUniformRXViaFWHT(p *Pool, beta float64) {
	n := s.NumQubits()
	cosT64, sinT64 := mixerPhaseTables(n, beta)
	cosT := make([]float32, n+1)
	sinT := make([]float32, n+1)
	for k := 0; k <= n; k++ {
		cosT[k], sinT[k] = float32(cosT64[k]), float32(sinT64[k])
	}
	re, im := s.Re, s.Im
	fwhtPool(p, re, fwhtBlockFloat32)
	fwhtPool(p, im, fwhtBlockFloat32)
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k := bits.OnesCount(uint(i))
			cs, sn := cosT[k], sinT[k]
			r, m := re[i], im[i]
			re[i] = r*cs - m*sn
			im[i] = r*sn + m*cs
		}
	})
	fwhtPool(p, re, fwhtBlockFloat32)
	fwhtPool(p, im, fwhtBlockFloat32)
}
