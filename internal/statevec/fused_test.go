package statevec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFusedMixerMatchesAlgorithm2(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		for _, beta := range []float64{0, 0.31, -1.2, math.Pi / 2} {
			v := randomState(rng, n)
			want := v.Clone()
			ApplyUniformRX(want, beta)

			serial := v.Clone()
			ApplyUniformRXFused(serial, beta)
			if d := MaxAbsDiff(serial, want); d > 1e-12 {
				t.Fatalf("n=%d β=%v: serial fused differs by %g", n, beta, d)
			}

			p := NewPool(3)
			p.minParallel = 1
			pooled := v.Clone()
			p.ApplyUniformRXFused(pooled, beta)
			if d := MaxAbsDiff(pooled, want); d > 1e-12 {
				t.Fatalf("n=%d β=%v: pooled fused differs by %g", n, beta, d)
			}

			soa := SoAFromVec(v)
			soa.ApplyUniformRXFused(p, beta)
			if d := MaxAbsDiff(soa.ToVec(), want); d > 1e-12 {
				t.Fatalf("n=%d β=%v: SoA fused differs by %g", n, beta, d)
			}
		}
	}
}

// Property (testing/quick): the fused sweep is unitary for any angle.
func TestQuickFusedUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	v := randomState(rng, 7) // odd n exercises the tail sweep
	f := func(raw int8) bool {
		beta := float64(raw) / 13
		w := v.Clone()
		ApplyUniformRXFused(w, beta)
		return math.Abs(w.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFusedVsPerQubitMixer(b *testing.B) {
	n := 18
	p := NewPool(0)
	b.Run("per-qubit-aos", func(b *testing.B) {
		v := NewUniform(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ApplyUniformRX(v, 0.57)
		}
	})
	b.Run("fused-aos", func(b *testing.B) {
		v := NewUniform(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ApplyUniformRXFused(v, 0.57)
		}
	})
	b.Run("per-qubit-soa", func(b *testing.B) {
		s := NewSoAUniform(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ApplyUniformRX(p, 0.57)
		}
	})
	b.Run("fused-soa", func(b *testing.B) {
		s := NewSoAUniform(n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ApplyUniformRXFused(p, 0.57)
		}
	})
}
