package statevec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Pool is the data-parallel kernel engine: the CPU stand-in for the
// paper's GPU. Every kernel call splits its index space into
// contiguous chunks executed by Workers goroutines, mirroring how the
// CUDA kernels assign one amplitude pair per thread. On a machine with
// one core the pool degrades gracefully to near-serial execution.
type Pool struct {
	Workers int
	// minParallel is the smallest index space worth splitting; below
	// it kernels run inline to avoid goroutine overhead on tiny states.
	minParallel int
}

// NewPool returns a pool with the given worker count; w ≤ 0 selects
// runtime.GOMAXPROCS(0).
func NewPool(w int) *Pool {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Pool{Workers: w, minParallel: 1 << 12}
}

// Run partitions [0, n) into Workers contiguous chunks and invokes fn
// on each concurrently, blocking until all finish. Chunks are disjoint
// so fn may write freely within its range.
func (p *Pool) Run(n int, fn func(lo, hi int)) {
	if p == nil || p.Workers <= 1 || n < p.minParallel {
		fn(0, n)
		return
	}
	p.runParallel(n, fn)
}

// runWork is Run for coarse work items: the inline threshold is taken
// on the total element count (n items × work elements each) rather
// than the item count, so a pass over a few large blocks still splits
// across workers (n blocks alone would always sit under minParallel).
func (p *Pool) runWork(n, work int, fn func(lo, hi int)) {
	if p == nil || p.Workers <= 1 || n*work < p.minParallel {
		fn(0, n)
		return
	}
	p.runParallel(n, fn)
}

func (p *Pool) runParallel(n int, fn func(lo, hi int)) {
	w := p.Workers
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// reduce runs fn over [0, n) in chunks, collecting one float64 partial
// result per chunk and returning the sum.
func (p *Pool) Reduce(n int, fn func(lo, hi int) float64) float64 {
	if p == nil || p.Workers <= 1 || n < p.minParallel {
		return fn(0, n)
	}
	w := p.Workers
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	partial := make([]float64, (n+chunk-1)/chunk)
	var wg sync.WaitGroup
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			partial[slot] = fn(lo, hi)
		}(idx, lo, hi)
		idx++
	}
	wg.Wait()
	var s float64
	for _, x := range partial {
		s += x
	}
	return s
}

// ApplySU2 is the pool version of Algorithm 1: each of the 2^{n−1}
// amplitude pairs is an independent work item, exactly the GPU kernel
// decomposition described in §III-B.
func (p *Pool) ApplySU2(v Vec, q int, a, b complex128) {
	stride := checkStride(v, q)
	ac, bc := conj(a), conj(b)
	mask := stride - 1
	p.Run(len(v)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := (t>>uint(q))<<uint(q+1) | (t & mask)
			l2 := l1 + stride
			y1, y2 := v[l1], v[l2]
			v[l1] = a*y1 - bc*y2
			v[l2] = b*y1 + ac*y2
		}
	})
}

// ApplyUniformRX applies the transverse-field mixer with the pool
// engine (Algorithm 2 over Algorithm 1 pool kernels).
func (p *Pool) ApplyUniformRX(v Vec, beta float64) {
	n := v.NumQubits()
	s, c := math.Sincos(beta)
	a, b := complex(c, 0), complex(0, -s)
	for q := 0; q < n; q++ {
		p.ApplySU2(v, q, a, b)
	}
}

// ApplyXY is the pool version of the SU(4) xy kernel.
func (p *Pool) ApplyXY(v Vec, i, j int, beta float64) {
	if i == j {
		panic("statevec: ApplyXY requires distinct qubits")
	}
	n := v.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ApplyXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	s64, c64 := math.Sincos(beta)
	c, s := complex(c64, 0), complex(0, -s64)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	p.Run(len(v)>>2, func(from, to int) {
		for t := from; t < to; t++ {
			base := expand2(t, lo, hi)
			xa := base | maskI
			xb := base | maskJ
			ya, yb := v[xa], v[xb]
			v[xa] = c*ya + s*yb
			v[xb] = s*ya + c*yb
		}
	})
}

// Apply1Q is the pool version of the generic single-qubit gate; the
// gate-based baseline engine uses it for its parallel ("cuStateVec
// gates") mode.
func (p *Pool) Apply1Q(v Vec, q int, u [2][2]complex128) {
	stride := checkStride(v, q)
	mask := stride - 1
	p.Run(len(v)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := (t>>uint(q))<<uint(q+1) | (t & mask)
			l2 := l1 + stride
			y1, y2 := v[l1], v[l2]
			v[l1] = u[0][0]*y1 + u[0][1]*y2
			v[l2] = u[1][0]*y1 + u[1][1]*y2
		}
	})
}

// Apply2Q is the pool version of the generic two-qubit gate (same
// basis convention as the serial Apply2Q).
func (p *Pool) Apply2Q(v Vec, q1, q2 int, u [4][4]complex128) {
	if q1 == q2 {
		panic("statevec: Apply2Q requires distinct qubits")
	}
	n := v.NumQubits()
	if q1 < 0 || q1 >= n || q2 < 0 || q2 >= n {
		panic(fmt.Sprintf("statevec: Apply2Q qubits (%d,%d) out of range for n=%d", q1, q2, n))
	}
	lo, hi := q1, q2
	if lo > hi {
		lo, hi = hi, lo
	}
	m1, m2 := 1<<uint(q1), 1<<uint(q2)
	p.Run(len(v)>>2, func(from, to int) {
		for t := from; t < to; t++ {
			i00 := expand2(t, lo, hi)
			i01 := i00 | m1
			i10 := i00 | m2
			i11 := i01 | m2
			y0, y1, y2, y3 := v[i00], v[i01], v[i10], v[i11]
			v[i00] = u[0][0]*y0 + u[0][1]*y1 + u[0][2]*y2 + u[0][3]*y3
			v[i01] = u[1][0]*y0 + u[1][1]*y1 + u[1][2]*y2 + u[1][3]*y3
			v[i10] = u[2][0]*y0 + u[2][1]*y1 + u[2][2]*y2 + u[2][3]*y3
			v[i11] = u[3][0]*y0 + u[3][1]*y1 + u[3][2]*y2 + u[3][3]*y3
		}
	})
}

// PhaseDiag is the pool version of the phase operator.
func (p *Pool) PhaseDiag(v Vec, diag []float64, gamma float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: PhaseDiag length mismatch %d vs %d", len(v), len(diag)))
	}
	p.Run(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s, c := math.Sincos(-gamma * diag[i])
			v[i] *= complex(c, s)
		}
	})
}

// ExpectationDiag is the pool version of the objective inner product.
func (p *Pool) ExpectationDiag(v Vec, diag []float64) float64 {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: ExpectationDiag length mismatch %d vs %d", len(v), len(diag)))
	}
	return p.Reduce(len(v), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			a := v[i]
			s += diag[i] * (real(a)*real(a) + imag(a)*imag(a))
		}
		return s
	})
}

// NormSquared returns ‖v‖₂² with a parallel reduction.
func (p *Pool) NormSquared(v Vec) float64 {
	return p.Reduce(len(v), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			a := v[i]
			s += real(a)*real(a) + imag(a)*imag(a)
		}
		return s
	})
}
