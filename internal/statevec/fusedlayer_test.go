package statevec

import (
	"math/rand"
	"testing"
)

// TestFusedLayerMatchesUnfused is the property suite for the fused
// phase+mixer kernels: on every representation (serial Vec, Pool, SoA,
// SoA32), for odd and even n including the n < 2 degenerate cases, the
// combined kernel must reproduce PhaseDiag followed by the mixer sweep
// to rtol 1e-12. The fused kernels replay the exact unfused arithmetic
// per amplitude, so the double-precision paths agree bit-for-bit and
// even the float32 path sits far inside the tolerance.
func TestFusedLayerMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{0, 1, 2, 3, 6, 7} {
		gamma := 0.83 - 0.07*float64(n)
		beta := 0.29 + 0.13*float64(n)
		v := randomState(rng, n)
		v.Normalize()
		diag := make([]float64, len(v))
		for i := range diag {
			diag[i] = rng.NormFloat64() * 3
		}

		// Reference: separate phase + per-qubit sweep, and separate
		// phase + F=2 pair sweep.
		want := v.Clone()
		PhaseDiag(want, diag, gamma)
		ApplyUniformRX(want, beta)
		wantPair := v.Clone()
		PhaseDiag(wantPair, diag, gamma)
		ApplyUniformRXFused(wantPair, beta)

		check := func(name string, got Vec, ref Vec) {
			t.Helper()
			for i := range got {
				d := cmplxAbs(got[i] - ref[i])
				if d > 1e-12*(1+cmplxAbs(ref[i])) {
					t.Fatalf("n=%d %s deviates at %d by %g", n, name, i, d)
					return
				}
			}
		}

		fused := v.Clone()
		ApplyPhaseThenUniformRX(fused, diag, gamma, beta)
		check("serial", fused, want)

		fusedPair := v.Clone()
		ApplyPhaseThenUniformRXFused(fusedPair, diag, gamma, beta)
		check("serial pair-fused", fusedPair, wantPair)

		for _, workers := range []int{1, 3} {
			p := NewPool(workers)
			p.minParallel = 1
			pf := v.Clone()
			p.ApplyPhaseThenUniformRX(pf, diag, gamma, beta)
			check("pool", pf, want)

			pfp := v.Clone()
			p.ApplyPhaseThenUniformRXFused(pfp, diag, gamma, beta)
			check("pool pair-fused", pfp, wantPair)

			soa := SoAFromVec(v)
			soa.ApplyPhaseThenUniformRX(p, diag, gamma, beta)
			soaWant := SoAFromVec(v)
			soaWant.PhaseDiag(p, diag, gamma)
			soaWant.ApplyUniformRX(p, beta)
			check("soa", soa.ToVec(), soaWant.ToVec())

			soaPair := SoAFromVec(v)
			soaPair.ApplyPhaseThenUniformRXFused(p, diag, gamma, beta)
			soaPairWant := SoAFromVec(v)
			soaPairWant.PhaseDiag(p, diag, gamma)
			soaPairWant.ApplyUniformRXFused(p, beta)
			check("soa pair-fused", soaPair.ToVec(), soaPairWant.ToVec())

			soa32 := SoA32FromVec(v)
			soa32.ApplyPhaseThenUniformRX(p, diag, gamma, beta)
			soa32Want := SoA32FromVec(v)
			soa32Want.PhaseDiag(p, diag, gamma)
			soa32Want.ApplyUniformRX(p, beta)
			check("soa32", soa32.ToVec(), soa32Want.ToVec())

			soa32Pair := SoA32FromVec(v)
			soa32Pair.ApplyPhaseThenUniformRXFused(p, diag, gamma, beta)
			soa32PairWant := SoA32FromVec(v)
			soa32PairWant.PhaseDiag(p, diag, gamma)
			soa32PairWant.ApplyUniformRXFused(p, beta)
			check("soa32 pair-fused", soa32Pair.ToVec(), soa32PairWant.ToVec())
		}
	}
}

func cmplxAbs(z complex128) float64 {
	re, im := real(z), imag(z)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re < im {
		re, im = im, re
	}
	return re + im // 1-norm bound; fine for tolerance checks
}

// TestFusedLayerOddTail pins the odd-n tail of the pair-fused kernel:
// at n = 5 the final qubit is swept alone after two fused pair passes,
// and the result must still be a unit-norm state equal to the unfused
// composition (covered above) — here we additionally check norm
// preservation directly, the symptom a broken tail shows first.
func TestFusedLayerOddTail(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	v := randomState(rng, 5)
	v.Normalize()
	diag := make([]float64, len(v))
	for i := range diag {
		diag[i] = float64(i%7) - 3
	}
	ApplyPhaseThenUniformRXFused(v, diag, 0.9, 0.4)
	if d := v.Norm(); d < 1-1e-12 || d > 1+1e-12 {
		t.Fatalf("odd-n pair-fused layer broke the norm: %v", d)
	}
}

func BenchmarkFusedLayer(b *testing.B) {
	const n = 18
	p := NewPool(0)
	diag := make([]float64, 1<<n)
	rng := rand.New(rand.NewSource(71))
	for i := range diag {
		diag[i] = rng.NormFloat64()
	}
	b.Run("separate", func(b *testing.B) {
		s := NewSoAUniform(n)
		b.SetBytes(int64(16 * len(diag)))
		for i := 0; i < b.N; i++ {
			s.PhaseDiag(p, diag, 0.7)
			s.ApplyUniformRXFused(p, 0.3)
		}
	})
	b.Run("fused", func(b *testing.B) {
		s := NewSoAUniform(n)
		b.SetBytes(int64(16 * len(diag)))
		for i := 0; i < b.N; i++ {
			s.ApplyPhaseThenUniformRXFused(p, diag, 0.7, 0.3)
		}
	})
}
