package statevec

// Native Go fuzz target for the fast Walsh–Hadamard transform: H^⊗n
// is an involution and an isometry, so for any state decoded from the
// fuzzer's bytes, applying FWHT twice must return the input and one
// application must preserve the norm. Seed corpora live in
// testdata/fuzz/; CI runs a short -fuzztime smoke on top of them.

import (
	"math"
	"math/cmplx"
	"testing"
)

// decodeState maps an arbitrary byte string onto an n-qubit state:
// byte 0 selects n ∈ [1,6]; amplitudes are read from the remaining
// bytes (cycled when short, so even tiny inputs produce full states).
func decodeState(data []byte) Vec {
	n := 1
	if len(data) > 0 {
		n += int(data[0] % 6)
		data = data[1:]
	}
	v := New(n)
	if len(data) == 0 {
		data = []byte{1}
	}
	at := func(i int) float64 { return (float64(data[i%len(data)]) - 127.5) / 128 }
	for i := range v {
		v[i] = complex(at(2*i), at(2*i+1))
	}
	return v
}

func FuzzFWHTInvolution(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 7, 200, 13, 0, 0, 255})
	f.Add([]byte{5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 128})
	f.Fuzz(func(t *testing.T, data []byte) {
		v := decodeState(data)
		orig := v.Clone()
		normBefore := v.Norm()

		FWHT(v)
		if d := math.Abs(v.Norm() - normBefore); d > 1e-12*(1+normBefore) {
			t.Fatalf("FWHT changed the norm by %g (‖v‖=%g)", d, normBefore)
		}
		FWHT(v)
		scale := normBefore
		if scale < 1 {
			scale = 1
		}
		for i := range v {
			if d := cmplx.Abs(v[i] - orig[i]); d > 1e-12*scale {
				t.Fatalf("index %d: FWHT² deviates from identity by %g", i, d)
			}
		}
	})
}
