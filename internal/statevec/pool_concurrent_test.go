package statevec

import (
	"math/rand"
	"sync"
	"testing"
)

// These tests pin the Pool kernels under *shared concurrent use*: the
// sweep engine hands one Pool to many evaluation goroutines at once,
// each applying kernels to its own state. The Pool must behave as a
// pure fan-out — no state of its own — so every concurrent result must
// match the serial kernel bit for bit. Run with -race.

// concurrently runs fn from `workers` goroutines with distinct ids and
// waits for all.
func concurrently(workers int, fn func(id int)) {
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fn(id)
		}(k)
	}
	wg.Wait()
}

// randomVec draws a (non-normalized) random state.
func randomVec(rng *rand.Rand, n int) Vec {
	v := New(n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return v
}

// TestPoolPhaseDiagConcurrent pins PhaseDiag: 8 goroutines share one
// Pool, each phasing its own state and SoA copy against its own
// diagonal; both layouts must match the serial kernel exactly.
func TestPoolPhaseDiagConcurrent(t *testing.T) {
	const n, workers = 11, 8
	pool := NewPool(4)
	pool.minParallel = 1 // force the parallel code path at 2^11 amplitudes

	type job struct {
		vec   Vec
		soa   *SoA
		want  Vec
		diag  []float64
		gamma float64
	}
	jobs := make([]job, workers)
	rng := rand.New(rand.NewSource(17))
	for k := range jobs {
		v := randomVec(rng, n)
		diag := make([]float64, len(v))
		for i := range diag {
			diag[i] = rng.NormFloat64()
		}
		jobs[k] = job{
			vec:   v.Clone(),
			soa:   SoAFromVec(v),
			want:  v.Clone(),
			diag:  diag,
			gamma: rng.Float64(),
		}
		PhaseDiag(jobs[k].want, diag, jobs[k].gamma) // serial reference
	}

	concurrently(workers, func(id int) {
		j := &jobs[id]
		pool.PhaseDiag(j.vec, j.diag, j.gamma)
		j.soa.PhaseDiag(pool, j.diag, j.gamma)
	})

	for k, j := range jobs {
		if d := MaxAbsDiff(j.vec, j.want); d != 0 {
			t.Errorf("worker %d: pool PhaseDiag deviates from serial by %g", k, d)
		}
		if d := MaxAbsDiff(j.soa.ToVec(), j.want); d != 0 {
			t.Errorf("worker %d: SoA PhaseDiag deviates from serial by %g", k, d)
		}
	}
}

// TestPoolApplyUniformRXConcurrent pins the mixer sweep (plain and
// fused, complex and SoA layouts) under a shared pool.
func TestPoolApplyUniformRXConcurrent(t *testing.T) {
	const n, workers = 11, 8
	pool := NewPool(4)
	pool.minParallel = 1

	rng := rand.New(rand.NewSource(23))
	betas := make([]float64, workers)
	inputs := make([]Vec, workers)
	wants := make([]Vec, workers)
	for k := 0; k < workers; k++ {
		betas[k] = rng.Float64() * 2
		inputs[k] = randomVec(rng, n)
		wants[k] = inputs[k].Clone()
		ApplyUniformRX(wants[k], betas[k]) // serial reference
	}

	variants := []struct {
		name  string
		apply func(v Vec, soa *SoA, beta float64)
	}{
		{"pool", func(v Vec, _ *SoA, beta float64) { pool.ApplyUniformRX(v, beta) }},
		{"pool-fused", func(v Vec, _ *SoA, beta float64) { pool.ApplyUniformRXFused(v, beta) }},
		{"soa", func(_ Vec, s *SoA, beta float64) { s.ApplyUniformRX(pool, beta) }},
		{"soa-fused", func(_ Vec, s *SoA, beta float64) { s.ApplyUniformRXFused(pool, beta) }},
	}
	for _, vt := range variants {
		t.Run(vt.name, func(t *testing.T) {
			vecs := make([]Vec, workers)
			soas := make([]*SoA, workers)
			for k := range vecs {
				vecs[k] = inputs[k].Clone()
				soas[k] = SoAFromVec(inputs[k])
			}
			concurrently(workers, func(id int) {
				vt.apply(vecs[id], soas[id], betas[id])
			})
			for k := 0; k < workers; k++ {
				got := vecs[k]
				if vt.name == "soa" || vt.name == "soa-fused" {
					got = soas[k].ToVec()
				}
				// The fused sweeps reassociate the arithmetic, so allow
				// a few ULPs there; unfused must match exactly.
				tol := 0.0
				if vt.name == "pool-fused" || vt.name == "soa-fused" {
					tol = 1e-14
				}
				if d := MaxAbsDiff(got, wants[k]); d > tol {
					t.Errorf("worker %d: %s deviates from serial ApplyUniformRX by %g", k, vt.name, d)
				}
			}
		})
	}
}

// TestPoolApplyXYConcurrent pins the SU(4) xy kernel on random qubit
// pairs under a shared pool, in both layouts.
func TestPoolApplyXYConcurrent(t *testing.T) {
	const n, workers = 11, 8
	pool := NewPool(4)
	pool.minParallel = 1

	rng := rand.New(rand.NewSource(29))
	type job struct {
		vec  Vec
		soa  *SoA
		want Vec
		i, j int
		beta float64
	}
	jobs := make([]job, workers)
	for k := range jobs {
		v := randomVec(rng, n)
		i := rng.Intn(n)
		j := (i + 1 + rng.Intn(n-1)) % n
		beta := rng.Float64() * 2
		jobs[k] = job{vec: v.Clone(), soa: SoAFromVec(v), want: v.Clone(), i: i, j: j, beta: beta}
		ApplyXY(jobs[k].want, i, j, beta) // serial reference
	}

	concurrently(workers, func(id int) {
		j := &jobs[id]
		pool.ApplyXY(j.vec, j.i, j.j, j.beta)
		j.soa.ApplyXY(pool, j.i, j.j, j.beta)
	})

	for k, j := range jobs {
		if d := MaxAbsDiff(j.vec, j.want); d != 0 {
			t.Errorf("worker %d: pool ApplyXY(%d,%d) deviates from serial by %g", k, j.i, j.j, d)
		}
		if d := MaxAbsDiff(j.soa.ToVec(), j.want); d != 0 {
			t.Errorf("worker %d: SoA ApplyXY(%d,%d) deviates from serial by %g", k, j.i, j.j, d)
		}
	}
}

// TestPoolReduceConcurrent pins the reductions (ExpectationDiag,
// NormSquared) that close every sweep evaluation: concurrent shared-
// pool reductions must be deterministic (fixed chunking, fixed partial
// order) and equal to the serial sum.
func TestPoolReduceConcurrent(t *testing.T) {
	const n, workers = 11, 8
	pool := NewPool(4)
	pool.minParallel = 1

	rng := rand.New(rand.NewSource(31))
	v := randomVec(rng, n)
	soa := SoAFromVec(v)
	diag := make([]float64, len(v))
	for i := range diag {
		diag[i] = rng.NormFloat64()
	}
	wantE := pool.ExpectationDiag(v, diag)
	wantN := pool.NormSquared(v)

	results := make([][2]float64, workers)
	concurrently(workers, func(id int) {
		var e, nn float64
		if id%2 == 0 {
			e = pool.ExpectationDiag(v, diag)
			nn = pool.NormSquared(v)
		} else {
			e = soa.ExpectationDiag(pool, diag)
			nn = soa.NormSquared(pool)
		}
		results[id] = [2]float64{e, nn}
	})
	for k, r := range results {
		if r[0] != wantE {
			t.Errorf("worker %d: ExpectationDiag = %v, want %v", k, r[0], wantE)
		}
		if r[1] != wantN {
			t.Errorf("worker %d: NormSquared = %v, want %v", k, r[1], wantN)
		}
	}
}

// TestPoolSharedAcrossSizes guards the chunking logic itself: many
// goroutines driving one pool with different index-space sizes at
// once (the mixed-depth sweep case) must each see exactly their own
// range covered, exactly once.
func TestPoolSharedAcrossSizes(t *testing.T) {
	pool := NewPool(4)
	pool.minParallel = 1
	concurrently(16, func(id int) {
		size := 1 + id*537
		hits := make([]int32, size)
		pool.Run(size, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i]++
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Errorf("worker %d: index %d covered %d times", id, i, h)
				return
			}
		}
	})
}
