package statevec

import (
	"fmt"
	"math"
)

// SoA32 is the single-precision (complex64-equivalent) split-layout
// state: 8 bytes per amplitude instead of 16. The paper runs its own
// experiments in double precision but notes that its n = 31 simulation
// costs the same memory as n = 32 in single precision, and both of its
// GPU baselines (cuQuantum in Ref. [24], qsim in Ref. [36]) report
// single-precision numbers — this representation is what makes those
// comparisons possible and lets one more qubit fit in the same
// footprint. Rotation coefficients and all reductions are computed in
// float64; only the stored amplitudes are float32, so the error per
// layer is a few ULPs and the `qaoabench precision` experiment
// measures how it accumulates with depth.
type SoA32 struct {
	Re, Im []float32
}

// NewSoA32 allocates the zero state for n qubits in single precision —
// a reusable buffer for SetFromVec-style workflows.
func NewSoA32(n int) *SoA32 {
	checkQubits(n)
	size := 1 << uint(n)
	return &SoA32{Re: make([]float32, size), Im: make([]float32, size)}
}

// NewSoA32Uniform returns |+⟩^⊗n in single precision.
func NewSoA32Uniform(n int) *SoA32 {
	checkQubits(n)
	size := 1 << uint(n)
	s := &SoA32{Re: make([]float32, size), Im: make([]float32, size)}
	amp := float32(1 / math.Sqrt(float64(size)))
	for i := range s.Re {
		s.Re[i] = amp
	}
	return s
}

// SoA32FromVec converts a double-precision vector down to single.
func SoA32FromVec(v Vec) *SoA32 {
	s := &SoA32{Re: make([]float32, len(v)), Im: make([]float32, len(v))}
	for i, a := range v {
		s.Re[i] = float32(real(a))
		s.Im[i] = float32(imag(a))
	}
	return s
}

// SetFromVec overwrites the state with v (rounded to single
// precision) without allocating; it panics on length mismatch.
func (s *SoA32) SetFromVec(v Vec) {
	if len(s.Re) != len(v) {
		panic(fmt.Sprintf("statevec: SetFromVec length mismatch %d vs %d", len(s.Re), len(v)))
	}
	for i, a := range v {
		s.Re[i] = float32(real(a))
		s.Im[i] = float32(imag(a))
	}
}

// ToVec converts up to a double-precision complex128 vector.
func (s *SoA32) ToVec() Vec {
	v := make(Vec, len(s.Re))
	for i := range v {
		v[i] = complex(float64(s.Re[i]), float64(s.Im[i]))
	}
	return v
}

// Len returns the number of amplitudes.
func (s *SoA32) Len() int { return len(s.Re) }

// NumQubits returns n for a 2^n-length state.
func (s *SoA32) NumQubits() int { return numQubits(len(s.Re)) }

// MemoryBytes returns the store size: 8 bytes per amplitude, half of
// complex128.
func (s *SoA32) MemoryBytes() int { return 8 * len(s.Re) }

// ApplyRX applies e^{−iβX} on qubit q (same update as SoA.ApplyRX with
// float32 storage).
func (s *SoA32) ApplyRX(p *Pool, q int, beta float64) {
	n := s.NumQubits()
	if q < 0 || q >= n {
		panic(fmt.Sprintf("statevec: qubit %d out of range for n=%d", q, n))
	}
	sn64, cs64 := math.Sincos(beta)
	sn, cs := float32(sn64), float32(cs64)
	stride := 1 << uint(q)
	mask := stride - 1
	re, im := s.Re, s.Im
	p.Run(len(re)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := (t>>uint(q))<<uint(q+1) | (t & mask)
			l2 := l1 + stride
			r1, i1 := re[l1], im[l1]
			r2, i2 := re[l2], im[l2]
			re[l1] = cs*r1 + sn*i2
			im[l1] = cs*i1 - sn*r2
			re[l2] = cs*r2 + sn*i1
			im[l2] = cs*i2 - sn*r1
		}
	})
}

// ApplyUniformRX sweeps ApplyRX over all qubits (Algorithm 2).
func (s *SoA32) ApplyUniformRX(p *Pool, beta float64) {
	n := s.NumQubits()
	for q := 0; q < n; q++ {
		s.ApplyRX(p, q, beta)
	}
}

// ApplyUniformRXFused is the F = 2 fused sweep in single precision.
func (s *SoA32) ApplyUniformRXFused(p *Pool, beta float64) {
	n := s.NumQubits()
	sn64, cs64 := math.Sincos(beta)
	cc := float32(cs64 * cs64)
	ss := float32(sn64 * sn64)
	cs := float32(cs64 * sn64)
	re, im := s.Re, s.Im
	q := 0
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(re)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i00 := (t>>uint(q))<<uint(q+2) | (t & mask)
				i01 := i00 + stride
				i10 := i00 + 2*stride
				i11 := i01 + 2*stride
				r00, m00 := re[i00], im[i00]
				r01, m01 := re[i01], im[i01]
				r10, m10 := re[i10], im[i10]
				r11, m11 := re[i11], im[i11]
				re[i00] = cc*r00 + cs*(m01+m10) - ss*r11
				im[i00] = cc*m00 - cs*(r01+r10) - ss*m11
				re[i01] = cc*r01 + cs*(m00+m11) - ss*r10
				im[i01] = cc*m01 - cs*(r00+r11) - ss*m10
				re[i10] = cc*r10 + cs*(m00+m11) - ss*r01
				im[i10] = cc*m10 - cs*(r00+r11) - ss*m01
				re[i11] = cc*r11 + cs*(m01+m10) - ss*r00
				im[i11] = cc*m11 - cs*(r01+r10) - ss*m00
			}
		})
	}
	if q < n {
		s.ApplyRX(p, q, beta)
	}
}

// ApplyXY applies e^{−iβ(XX+YY)/2} on the pair (i, j).
func (s *SoA32) ApplyXY(p *Pool, i, j int, beta float64) {
	if i == j {
		panic("statevec: ApplyXY requires distinct qubits")
	}
	n := s.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ApplyXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	sn64, cs64 := math.Sincos(beta)
	sn, cs := float32(sn64), float32(cs64)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	re, im := s.Re, s.Im
	p.Run(len(re)>>2, func(from, to int) {
		for t := from; t < to; t++ {
			base := expand2(t, lo, hi)
			xa := base | maskI
			xb := base | maskJ
			ra, ia := re[xa], im[xa]
			rb, ib := re[xb], im[xb]
			re[xa] = cs*ra + sn*ib
			im[xa] = cs*ia - sn*rb
			re[xb] = cs*rb + sn*ia
			im[xb] = cs*ib - sn*ra
		}
	})
}

// PhaseDiag multiplies amplitude x by e^{−iγ·diag_x}; the phase
// factors are evaluated in double precision.
func (s *SoA32) PhaseDiag(p *Pool, diag []float64, gamma float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: PhaseDiag length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	re, im := s.Re, s.Im
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sn64, cs64 := math.Sincos(-gamma * diag[i])
			sn, cs := float32(sn64), float32(cs64)
			r, m := re[i], im[i]
			re[i] = r*cs - m*sn
			im[i] = r*sn + m*cs
		}
	})
}

// ExpectationDiag returns Σ_x diag_x|ψ_x|², accumulated in float64 so
// the reduction does not add single-precision error on top of the
// state's.
func (s *SoA32) ExpectationDiag(p *Pool, diag []float64) float64 {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ExpectationDiag length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	re, im := s.Re, s.Im
	return p.Reduce(len(re), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			r, m := float64(re[i]), float64(im[i])
			acc += diag[i] * (r*r + m*m)
		}
		return acc
	})
}

// NormSquared returns ‖ψ‖₂² in float64.
func (s *SoA32) NormSquared(p *Pool) float64 {
	re, im := s.Re, s.Im
	return p.Reduce(len(re), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			r, m := float64(re[i]), float64(im[i])
			acc += r*r + m*m
		}
		return acc
	})
}

// Probabilities writes |ψ_x|² into dst (float64 output for API
// compatibility with the double-precision backends).
func (s *SoA32) Probabilities(dst []float64) []float64 {
	if cap(dst) < len(s.Re) {
		dst = make([]float64, len(s.Re))
	}
	dst = dst[:len(s.Re)]
	for i := range dst {
		r, m := float64(s.Re[i]), float64(s.Im[i])
		dst[i] = r*r + m*m
	}
	return dst
}
