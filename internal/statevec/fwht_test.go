package statevec

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
)

// fwhtReference is the textbook one-stage-per-traversal transform the
// blocked implementation must agree with.
func fwhtReference(v Vec) {
	n := v.NumQubits()
	inv := complex(1/math.Sqrt2, 0)
	for q := 0; q < n; q++ {
		stride := 1 << uint(q)
		for base := 0; base < len(v); base += 2 * stride {
			for off := 0; off < stride; off++ {
				l1 := base + off
				l2 := l1 + stride
				y1, y2 := v[l1], v[l2]
				v[l1] = (y1 + y2) * inv
				v[l2] = (y1 - y2) * inv
			}
		}
	}
}

// TestFWHTBlockedMatchesReference drives the blocked transform with
// artificially small block lengths so every split of low/high stages —
// including radix-4 pairs and the trailing unpaired stage — is
// exercised against the per-stage reference. The radix-4 pairing
// merges two 1/√2 normalizations into one 1/2, so agreement is to
// rounding, not bit-exact.
func TestFWHTBlockedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 0; n <= 10; n++ {
		orig := randomState(rng, n)
		want := orig.Clone()
		fwhtReference(want)
		for _, blockLen := range []int{2, 4, 16, 1 << 14} {
			got := orig.Clone()
			fwhtSerial(got, blockLen)
			if d := MaxAbsDiff(got, want); d > 1e-12 {
				t.Errorf("n=%d blockLen=%d serial blocked FWHT deviates by %g", n, blockLen, d)
			}
			for _, workers := range []int{2, 3, 7} {
				p := NewPool(workers)
				p.minParallel = 1 // force the parallel path on tiny states
				got := orig.Clone()
				fwhtPool(p, got, blockLen)
				if d := MaxAbsDiff(got, want); d > 1e-12 {
					t.Errorf("n=%d blockLen=%d workers=%d pooled blocked FWHT deviates by %g", n, blockLen, workers, d)
				}
			}
		}
	}
}

// TestFWHTRealPlanes checks the generic transform over real element
// types: a complex state transforms exactly as its Re/Im planes
// transformed independently (the FWHT is real-linear), in both
// float64 and float32 (to single-precision tolerance).
func TestFWHTRealPlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n = 7
	v := randomState(rng, n)
	want := v.Clone()
	FWHT(want)

	re64 := make([]float64, len(v))
	im64 := make([]float64, len(v))
	re32 := make([]float32, len(v))
	im32 := make([]float32, len(v))
	for i, a := range v {
		re64[i], im64[i] = real(a), imag(a)
		re32[i], im32[i] = float32(real(a)), float32(imag(a))
	}
	fwhtSerial(re64, 16)
	fwhtSerial(im64, 16)
	fwhtSerial(re32, 16)
	fwhtSerial(im32, 16)
	for i := range want {
		if d := math.Abs(re64[i] - real(want[i])); d > 1e-12 {
			t.Fatalf("float64 Re plane deviates at %d by %g", i, d)
		}
		if d := math.Abs(im64[i] - imag(want[i])); d > 1e-12 {
			t.Fatalf("float64 Im plane deviates at %d by %g", i, d)
		}
		if d := math.Abs(float64(re32[i]) - real(want[i])); d > 1e-5 {
			t.Fatalf("float32 Re plane deviates at %d by %g", i, d)
		}
	}
}

// TestPoolFWHTSerialFallback pins the satellite fix: below the pool's
// inline threshold Pool.FWHT must produce exactly the serial result
// (it delegates outright instead of spawning a parallel Run per
// butterfly stage), and above it the parallel path must still agree.
func TestPoolFWHTSerialFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	p := NewPool(4) // default minParallel = 1<<12
	small := randomState(rng, 8)
	want := small.Clone()
	FWHT(want)
	got := small.Clone()
	p.FWHT(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("below-threshold Pool.FWHT is not bit-identical to serial at %d: %v vs %v", i, got[i], want[i])
		}
	}

	big := randomState(rng, 13) // 2^13 ≥ minParallel: parallel path
	want = big.Clone()
	FWHT(want)
	p.FWHT(big)
	if d := MaxAbsDiff(big, want); d > 1e-12 {
		t.Fatalf("above-threshold Pool.FWHT deviates from serial by %g", d)
	}
}

// TestMixerViaFWHTRouteMatchesSweep checks the full FWHT mixer route —
// forward transform, popcount diagonal, inverse — against the
// Algorithm 2 sweep on every state representation, for odd and even n
// (n = 15 exceeds the complex block length, so the serial route also
// crosses into the high-stage code).
func TestMixerViaFWHTRouteMatchesSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{1, 2, 5, 6, 15} {
		beta := 0.37 + 0.11*float64(n)
		v := randomState(rng, n)
		v.Normalize()
		want := v.Clone()
		ApplyUniformRX(want, beta)

		serial := v.Clone()
		ApplyUniformRXViaFWHT(serial, beta)
		if d := MaxAbsDiff(serial, want); d > 1e-11 {
			t.Errorf("n=%d serial FWHT route deviates by %g", n, d)
		}

		p := NewPool(3)
		p.minParallel = 1
		pooled := v.Clone()
		p.ApplyUniformRXViaFWHT(pooled, beta)
		if d := MaxAbsDiff(pooled, want); d > 1e-11 {
			t.Errorf("n=%d pooled FWHT route deviates by %g", n, d)
		}

		soa := SoAFromVec(v)
		soa.ApplyUniformRXViaFWHT(p, beta)
		if d := MaxAbsDiff(soa.ToVec(), want); d > 1e-11 {
			t.Errorf("n=%d SoA FWHT route deviates by %g", n, d)
		}

		soa32 := SoA32FromVec(v)
		soa32.ApplyUniformRXViaFWHT(p, beta)
		if d := MaxAbsDiff(soa32.ToVec(), want); d > 1e-4*float64(n) {
			t.Errorf("n=%d SoA32 FWHT route deviates by %g", n, d)
		}
	}
}

// TestRunWorkThreshold pins runWork's coarse-item semantics: a few
// large blocks must still split across workers (total elements above
// minParallel), while genuinely tiny work stays inline.
func TestRunWorkThreshold(t *testing.T) {
	p := NewPool(4)
	var calls atomic.Int32
	p.runWork(8, 1<<12, func(lo, hi int) { calls.Add(1) })
	if calls.Load() < 2 {
		t.Errorf("runWork(8 blocks × 4096) ran inline (%d chunk calls), want a parallel split", calls.Load())
	}
	calls.Store(0)
	p.runWork(8, 16, func(lo, hi int) { calls.Add(1) })
	if calls.Load() != 1 {
		t.Errorf("runWork(8 blocks × 16) split into %d chunks, want inline", calls.Load())
	}
}

func BenchmarkMixerRoutes(b *testing.B) {
	const n = 18
	beta := 0.4
	p := NewPool(0)
	v := NewUniform(n)
	b.Run("sweep", func(b *testing.B) {
		b.SetBytes(int64(16 * len(v)))
		for i := 0; i < b.N; i++ {
			p.ApplyUniformRX(v, beta)
		}
	})
	b.Run("fwht", func(b *testing.B) {
		b.SetBytes(int64(16 * len(v)))
		for i := 0; i < b.N; i++ {
			p.ApplyUniformRXViaFWHT(v, beta)
		}
	})
}
