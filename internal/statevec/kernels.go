package statevec

import (
	"fmt"
	"math"
)

// ApplySU2 applies U = I ⊗ … ⊗ U⋆ ⊗ … ⊗ I in place, where the 2×2
// block U⋆ = [[a, −conj(b)], [b, conj(a)]] ∈ SU(2) acts on qubit q.
// This is Algorithm 1 of the paper: every amplitude pair (l1, l2)
// differing only in bit q is rotated independently, in place, with no
// extra memory.
func ApplySU2(v Vec, q int, a, b complex128) {
	stride := checkStride(v, q)
	ac, bc := conj(a), conj(b)
	for base := 0; base < len(v); base += 2 * stride {
		for off := 0; off < stride; off++ {
			l1 := base + off
			l2 := l1 + stride
			y1, y2 := v[l1], v[l2]
			v[l1] = a*y1 - bc*y2
			v[l2] = b*y1 + ac*y2
		}
	}
}

// Apply1Q applies an arbitrary 2×2 matrix u (row-major, u[row][col])
// to qubit q in place. Unlike ApplySU2 it does not assume unitarity;
// the gate-based baseline uses it for its generic gate set.
func Apply1Q(v Vec, q int, u [2][2]complex128) {
	stride := checkStride(v, q)
	for base := 0; base < len(v); base += 2 * stride {
		for off := 0; off < stride; off++ {
			l1 := base + off
			l2 := l1 + stride
			y1, y2 := v[l1], v[l2]
			v[l1] = u[0][0]*y1 + u[0][1]*y2
			v[l2] = u[1][0]*y1 + u[1][1]*y2
		}
	}
}

// ApplyRX applies e^{−iβX} = [[cos β, −i sin β], [−i sin β, cos β]] to
// qubit q: one factor of the paper's transverse-field mixer.
func ApplyRX(v Vec, q int, beta float64) {
	s, c := math.Sincos(beta)
	ApplySU2(v, q, complex(c, 0), complex(0, -s))
}

// ApplyUniformRX applies the full transverse-field mixer e^{−iβΣX_i} =
// Π_i e^{−iβX_i} by sweeping Algorithm 1 over every qubit — the
// paper's Algorithm 2 with U_i = RX(β) for all i.
func ApplyUniformRX(v Vec, beta float64) {
	n := v.NumQubits()
	s, c := math.Sincos(beta)
	a, b := complex(c, 0), complex(0, -s)
	for q := 0; q < n; q++ {
		ApplySU2(v, q, a, b)
	}
}

// ApplyUniformSU2 is Algorithm 2 in full generality: it applies
// ⨂_i U_i with a per-qubit SU(2) block given by (as[i], bs[i]).
func ApplyUniformSU2(v Vec, as, bs []complex128) {
	n := v.NumQubits()
	if len(as) != n || len(bs) != n {
		panic(fmt.Sprintf("statevec: ApplyUniformSU2 needs %d coefficients, got %d/%d", n, len(as), len(bs)))
	}
	for q := 0; q < n; q++ {
		ApplySU2(v, q, as[q], bs[q])
	}
}

// ApplyXY applies e^{−iβ(X_iX_j + Y_iY_j)/2} to the qubit pair (i, j)
// in place. The operator is the identity on |00⟩ and |11⟩ and rotates
// the (|..1_i..0_j..⟩, |..0_i..1_j..⟩) amplitude pairs by
// [[cos β, −i sin β], [−i sin β, cos β]]; it therefore conserves
// Hamming weight exactly. This is the SU(4) extension of Algorithm 1
// that the paper uses for the xy mixers.
func ApplyXY(v Vec, i, j int, beta float64) {
	if i == j {
		panic("statevec: ApplyXY requires distinct qubits")
	}
	n := v.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ApplyXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	s64, c64 := math.Sincos(beta)
	c, s := complex(c64, 0), complex(0, -s64)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	quarter := len(v) >> 2
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	for t := 0; t < quarter; t++ {
		base := expand2(t, lo, hi)
		xa := base | maskI
		xb := base | maskJ
		ya, yb := v[xa], v[xb]
		v[xa] = c*ya + s*yb
		v[xb] = s*ya + c*yb
	}
}

// Apply2Q applies an arbitrary 4×4 matrix u to the qubit pair
// (q1, q2), with two-qubit basis index r = (bit of q2)·2 + (bit of q1).
func Apply2Q(v Vec, q1, q2 int, u [4][4]complex128) {
	if q1 == q2 {
		panic("statevec: Apply2Q requires distinct qubits")
	}
	n := v.NumQubits()
	if q1 < 0 || q1 >= n || q2 < 0 || q2 >= n {
		panic(fmt.Sprintf("statevec: Apply2Q qubits (%d,%d) out of range for n=%d", q1, q2, n))
	}
	lo, hi := q1, q2
	if lo > hi {
		lo, hi = hi, lo
	}
	quarter := len(v) >> 2
	m1, m2 := 1<<uint(q1), 1<<uint(q2)
	for t := 0; t < quarter; t++ {
		i00 := expand2(t, lo, hi)
		i01 := i00 | m1
		i10 := i00 | m2
		i11 := i01 | m2
		y0, y1, y2, y3 := v[i00], v[i01], v[i10], v[i11]
		v[i00] = u[0][0]*y0 + u[0][1]*y1 + u[0][2]*y2 + u[0][3]*y3
		v[i01] = u[1][0]*y0 + u[1][1]*y1 + u[1][2]*y2 + u[1][3]*y3
		v[i10] = u[2][0]*y0 + u[2][1]*y1 + u[2][2]*y2 + u[2][3]*y3
		v[i11] = u[3][0]*y0 + u[3][1]*y1 + u[3][2]*y2 + u[3][3]*y3
	}
}

// expand2 inserts zero bits at positions lo and hi (lo < hi) into the
// packed index t, enumerating all indices whose lo-th and hi-th bits
// are clear. This is how one GPU thread (here: one loop iteration)
// addresses its two-qubit amplitude quadruple.
func expand2(t, lo, hi int) int {
	lowMask := 1<<uint(lo) - 1
	midMask := 1<<uint(hi-1) - 1
	x := t & lowMask
	y := (t >> uint(lo)) & (midMask >> uint(lo))
	z := t >> uint(hi-1)
	return x | y<<uint(lo+1) | z<<uint(hi+1)
}

func checkStride(v Vec, q int) int {
	n := v.NumQubits()
	if q < 0 || q >= n {
		panic(fmt.Sprintf("statevec: qubit %d out of range for n=%d", q, n))
	}
	return 1 << uint(q)
}

func conj(z complex128) complex128 { return complex(real(z), -imag(z)) }
