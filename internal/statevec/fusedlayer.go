package statevec

import (
	"fmt"
	"math"
)

// This file holds the fused phase+mixer layer kernels — the tentpole
// of the kernel speed pass. A QAOA layer is one elementwise diagonal
// phase multiply followed by the transverse-field mixer sweep; run
// separately those cost two full memory traversals where the first
// mixer pass could have absorbed the phase for free. Each kernel here
// folds e^{−iγ·diag_x} into the first pass over the state (the qubit-0
// butterfly of the per-qubit sweep, or the first RX⊗RX quadruple pass
// of the F = 2 fused sweep), then finishes with the ordinary sweep
// over the remaining qubits. On the memory-bandwidth-bound sizes
// (n ≥ 20) this removes one traversal per layer.
//
// The fused kernels compute the exact arithmetic sequence of
// PhaseDiag followed by the mixer — each amplitude is phased into a
// local temporary and then rotated with the same expressions the
// unfused kernels use — so their results are bit-identical to the
// separate passes, not merely close.

// ApplyPhaseThenUniformRX applies e^{−iβΣX_i}·e^{−iγ·diag} in one
// combined sweep: the phase is folded into the qubit-0 butterfly and
// qubits 1..n−1 follow as plain Algorithm 1 passes.
func ApplyPhaseThenUniformRX(v Vec, diag []float64, gamma, beta float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRX length mismatch %d vs %d", len(v), len(diag)))
	}
	n := v.NumQubits()
	if n == 0 {
		PhaseDiag(v, diag, gamma)
		return
	}
	s64, c64 := math.Sincos(beta)
	a, b := complex(c64, 0), complex(0, -s64)
	ac, bc := conj(a), conj(b)
	for l1 := 0; l1 < len(v); l1 += 2 {
		l2 := l1 + 1
		sn1, cs1 := math.Sincos(-gamma * diag[l1])
		sn2, cs2 := math.Sincos(-gamma * diag[l2])
		y1 := v[l1] * complex(cs1, sn1)
		y2 := v[l2] * complex(cs2, sn2)
		v[l1] = a*y1 - bc*y2
		v[l2] = b*y1 + ac*y2
	}
	for q := 1; q < n; q++ {
		ApplySU2(v, q, a, b)
	}
}

// ApplyPhaseThenUniformRX is the pool version of the combined
// phase+mixer sweep.
func (p *Pool) ApplyPhaseThenUniformRX(v Vec, diag []float64, gamma, beta float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRX length mismatch %d vs %d", len(v), len(diag)))
	}
	n := v.NumQubits()
	if n == 0 {
		p.PhaseDiag(v, diag, gamma)
		return
	}
	s64, c64 := math.Sincos(beta)
	a, b := complex(c64, 0), complex(0, -s64)
	ac, bc := conj(a), conj(b)
	p.Run(len(v)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := 2 * t
			l2 := l1 + 1
			sn1, cs1 := math.Sincos(-gamma * diag[l1])
			sn2, cs2 := math.Sincos(-gamma * diag[l2])
			y1 := v[l1] * complex(cs1, sn1)
			y2 := v[l2] * complex(cs2, sn2)
			v[l1] = a*y1 - bc*y2
			v[l2] = b*y1 + ac*y2
		}
	})
	for q := 1; q < n; q++ {
		p.ApplySU2(v, q, a, b)
	}
}

// ApplyPhaseThenUniformRXFused combines the phase with the F = 2
// fused mixer: the phase folds into the first RX⊗RX quadruple pass
// (qubits 0–1), the remaining pairs sweep as usual, and odd n
// finishes with one single-qubit pass.
func ApplyPhaseThenUniformRXFused(v Vec, diag []float64, gamma, beta float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRXFused length mismatch %d vs %d", len(v), len(diag)))
	}
	n := v.NumQubits()
	if n < 2 {
		ApplyPhaseThenUniformRX(v, diag, gamma, beta)
		return
	}
	s, c := math.Sincos(beta)
	cc := complex(c*c, 0)
	ss := complex(-s*s, 0)
	ics := complex(0, -c*s)
	for i00 := 0; i00 < len(v); i00 += 4 {
		i01, i10, i11 := i00+1, i00+2, i00+3
		sn0, cs0 := math.Sincos(-gamma * diag[i00])
		sn1, cs1 := math.Sincos(-gamma * diag[i01])
		sn2, cs2 := math.Sincos(-gamma * diag[i10])
		sn3, cs3 := math.Sincos(-gamma * diag[i11])
		y00 := v[i00] * complex(cs0, sn0)
		y01 := v[i01] * complex(cs1, sn1)
		y10 := v[i10] * complex(cs2, sn2)
		y11 := v[i11] * complex(cs3, sn3)
		v[i00] = cc*y00 + ics*y01 + ics*y10 + ss*y11
		v[i01] = ics*y00 + cc*y01 + ss*y10 + ics*y11
		v[i10] = ics*y00 + ss*y01 + cc*y10 + ics*y11
		v[i11] = ss*y00 + ics*y01 + ics*y10 + cc*y11
	}
	q := 2
	for ; q+1 < n; q += 2 {
		applyFusedRXPair(v, q, cc, ss, ics)
	}
	if q < n {
		ApplySU2(v, q, complex(c, 0), complex(0, -s))
	}
}

// ApplyPhaseThenUniformRXFused is the pool version of the combined
// phase + F = 2 fused sweep.
func (p *Pool) ApplyPhaseThenUniformRXFused(v Vec, diag []float64, gamma, beta float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRXFused length mismatch %d vs %d", len(v), len(diag)))
	}
	n := v.NumQubits()
	if n < 2 {
		p.ApplyPhaseThenUniformRX(v, diag, gamma, beta)
		return
	}
	s, c := math.Sincos(beta)
	cc := complex(c*c, 0)
	ss := complex(-s*s, 0)
	ics := complex(0, -c*s)
	p.Run(len(v)/4, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i00 := 4 * t
			i01, i10, i11 := i00+1, i00+2, i00+3
			sn0, cs0 := math.Sincos(-gamma * diag[i00])
			sn1, cs1 := math.Sincos(-gamma * diag[i01])
			sn2, cs2 := math.Sincos(-gamma * diag[i10])
			sn3, cs3 := math.Sincos(-gamma * diag[i11])
			y00 := v[i00] * complex(cs0, sn0)
			y01 := v[i01] * complex(cs1, sn1)
			y10 := v[i10] * complex(cs2, sn2)
			y11 := v[i11] * complex(cs3, sn3)
			v[i00] = cc*y00 + ics*y01 + ics*y10 + ss*y11
			v[i01] = ics*y00 + cc*y01 + ss*y10 + ics*y11
			v[i10] = ics*y00 + ss*y01 + cc*y10 + ics*y11
			v[i11] = ss*y00 + ics*y01 + ics*y10 + cc*y11
		}
	})
	q := 2
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(v)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i00 := (t>>uint(q))<<uint(q+2) | (t & mask)
				i01 := i00 + stride
				i10 := i00 + 2*stride
				i11 := i01 + 2*stride
				y00, y01, y10, y11 := v[i00], v[i01], v[i10], v[i11]
				v[i00] = cc*y00 + ics*y01 + ics*y10 + ss*y11
				v[i01] = ics*y00 + cc*y01 + ss*y10 + ics*y11
				v[i10] = ics*y00 + ss*y01 + cc*y10 + ics*y11
				v[i11] = ss*y00 + ics*y01 + ics*y10 + cc*y11
			}
		})
	}
	if q < n {
		p.ApplySU2(v, q, complex(c, 0), complex(0, -s))
	}
}

// ApplyPhaseThenUniformRX is the split-layout combined sweep: phase
// rotation and qubit-0 RX butterfly expanded into real arithmetic in
// one pass, then plain ApplyRX passes for qubits 1..n−1.
func (s *SoA) ApplyPhaseThenUniformRX(p *Pool, diag []float64, gamma, beta float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRX length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	n := s.NumQubits()
	if n == 0 {
		s.PhaseDiag(p, diag, gamma)
		return
	}
	sn, cs := math.Sincos(beta)
	re, im := s.Re, s.Im
	p.Run(len(re)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := 2 * t
			l2 := l1 + 1
			p1s, p1c := math.Sincos(-gamma * diag[l1])
			p2s, p2c := math.Sincos(-gamma * diag[l2])
			r1 := re[l1]*p1c - im[l1]*p1s
			i1 := re[l1]*p1s + im[l1]*p1c
			r2 := re[l2]*p2c - im[l2]*p2s
			i2 := re[l2]*p2s + im[l2]*p2c
			re[l1] = cs*r1 + sn*i2
			im[l1] = cs*i1 - sn*r2
			re[l2] = cs*r2 + sn*i1
			im[l2] = cs*i2 - sn*r1
		}
	})
	for q := 1; q < n; q++ {
		s.ApplyRX(p, q, beta)
	}
}

// ApplyPhaseThenUniformRXFused is the split-layout combined phase +
// F = 2 fused sweep.
func (sv *SoA) ApplyPhaseThenUniformRXFused(p *Pool, diag []float64, gamma, beta float64) {
	if len(sv.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRXFused length mismatch %d vs %d", len(sv.Re), len(diag)))
	}
	n := sv.NumQubits()
	if n < 2 {
		sv.ApplyPhaseThenUniformRX(p, diag, gamma, beta)
		return
	}
	s, c := math.Sincos(beta)
	cc := c * c
	ss := s * s
	cs := c * s
	re, im := sv.Re, sv.Im
	p.Run(len(re)/4, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i00 := 4 * t
			i01, i10, i11 := i00+1, i00+2, i00+3
			p0s, p0c := math.Sincos(-gamma * diag[i00])
			p1s, p1c := math.Sincos(-gamma * diag[i01])
			p2s, p2c := math.Sincos(-gamma * diag[i10])
			p3s, p3c := math.Sincos(-gamma * diag[i11])
			r00 := re[i00]*p0c - im[i00]*p0s
			m00 := re[i00]*p0s + im[i00]*p0c
			r01 := re[i01]*p1c - im[i01]*p1s
			m01 := re[i01]*p1s + im[i01]*p1c
			r10 := re[i10]*p2c - im[i10]*p2s
			m10 := re[i10]*p2s + im[i10]*p2c
			r11 := re[i11]*p3c - im[i11]*p3s
			m11 := re[i11]*p3s + im[i11]*p3c
			re[i00] = cc*r00 + cs*(m01+m10) - ss*r11
			im[i00] = cc*m00 - cs*(r01+r10) - ss*m11
			re[i01] = cc*r01 + cs*(m00+m11) - ss*r10
			im[i01] = cc*m01 - cs*(r00+r11) - ss*m10
			re[i10] = cc*r10 + cs*(m00+m11) - ss*r01
			im[i10] = cc*m10 - cs*(r00+r11) - ss*m01
			re[i11] = cc*r11 + cs*(m01+m10) - ss*r00
			im[i11] = cc*m11 - cs*(r01+r10) - ss*m00
		}
	})
	q := 2
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(re)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i00 := (t>>uint(q))<<uint(q+2) | (t & mask)
				i01 := i00 + stride
				i10 := i00 + 2*stride
				i11 := i01 + 2*stride
				r00, m00 := re[i00], im[i00]
				r01, m01 := re[i01], im[i01]
				r10, m10 := re[i10], im[i10]
				r11, m11 := re[i11], im[i11]
				re[i00] = cc*r00 + cs*(m01+m10) - ss*r11
				im[i00] = cc*m00 - cs*(r01+r10) - ss*m11
				re[i01] = cc*r01 + cs*(m00+m11) - ss*r10
				im[i01] = cc*m01 - cs*(r00+r11) - ss*m10
				re[i10] = cc*r10 + cs*(m00+m11) - ss*r01
				im[i10] = cc*m10 - cs*(r00+r11) - ss*m01
				re[i11] = cc*r11 + cs*(m01+m10) - ss*r00
				im[i11] = cc*m11 - cs*(r01+r10) - ss*m00
			}
		})
	}
	if q < n {
		sv.ApplyRX(p, q, beta)
	}
}

// ApplyPhaseThenUniformRX is the single-precision combined sweep.
// Phase factors and rotation coefficients are evaluated in float64
// and rounded once; the amplitude arithmetic is float32, matching the
// unfused PhaseDiag→ApplyRX sequence bit for bit.
func (s *SoA32) ApplyPhaseThenUniformRX(p *Pool, diag []float64, gamma, beta float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRX length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	n := s.NumQubits()
	if n == 0 {
		s.PhaseDiag(p, diag, gamma)
		return
	}
	sn64, cs64 := math.Sincos(beta)
	sn, cs := float32(sn64), float32(cs64)
	re, im := s.Re, s.Im
	p.Run(len(re)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := 2 * t
			l2 := l1 + 1
			p1s64, p1c64 := math.Sincos(-gamma * diag[l1])
			p2s64, p2c64 := math.Sincos(-gamma * diag[l2])
			p1s, p1c := float32(p1s64), float32(p1c64)
			p2s, p2c := float32(p2s64), float32(p2c64)
			r1 := re[l1]*p1c - im[l1]*p1s
			i1 := re[l1]*p1s + im[l1]*p1c
			r2 := re[l2]*p2c - im[l2]*p2s
			i2 := re[l2]*p2s + im[l2]*p2c
			re[l1] = cs*r1 + sn*i2
			im[l1] = cs*i1 - sn*r2
			re[l2] = cs*r2 + sn*i1
			im[l2] = cs*i2 - sn*r1
		}
	})
	for q := 1; q < n; q++ {
		s.ApplyRX(p, q, beta)
	}
}

// ApplyPhaseThenUniformRXFused is the single-precision combined phase
// + F = 2 fused sweep.
func (s *SoA32) ApplyPhaseThenUniformRXFused(p *Pool, diag []float64, gamma, beta float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ApplyPhaseThenUniformRXFused length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	n := s.NumQubits()
	if n < 2 {
		s.ApplyPhaseThenUniformRX(p, diag, gamma, beta)
		return
	}
	sn64, cs64 := math.Sincos(beta)
	cc := float32(cs64 * cs64)
	ss := float32(sn64 * sn64)
	cs := float32(cs64 * sn64)
	re, im := s.Re, s.Im
	p.Run(len(re)/4, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			i00 := 4 * t
			i01, i10, i11 := i00+1, i00+2, i00+3
			p0s64, p0c64 := math.Sincos(-gamma * diag[i00])
			p1s64, p1c64 := math.Sincos(-gamma * diag[i01])
			p2s64, p2c64 := math.Sincos(-gamma * diag[i10])
			p3s64, p3c64 := math.Sincos(-gamma * diag[i11])
			p0s, p0c := float32(p0s64), float32(p0c64)
			p1s, p1c := float32(p1s64), float32(p1c64)
			p2s, p2c := float32(p2s64), float32(p2c64)
			p3s, p3c := float32(p3s64), float32(p3c64)
			r00 := re[i00]*p0c - im[i00]*p0s
			m00 := re[i00]*p0s + im[i00]*p0c
			r01 := re[i01]*p1c - im[i01]*p1s
			m01 := re[i01]*p1s + im[i01]*p1c
			r10 := re[i10]*p2c - im[i10]*p2s
			m10 := re[i10]*p2s + im[i10]*p2c
			r11 := re[i11]*p3c - im[i11]*p3s
			m11 := re[i11]*p3s + im[i11]*p3c
			re[i00] = cc*r00 + cs*(m01+m10) - ss*r11
			im[i00] = cc*m00 - cs*(r01+r10) - ss*m11
			re[i01] = cc*r01 + cs*(m00+m11) - ss*r10
			im[i01] = cc*m01 - cs*(r00+r11) - ss*m10
			re[i10] = cc*r10 + cs*(m00+m11) - ss*r01
			im[i10] = cc*m10 - cs*(r00+r11) - ss*m01
			re[i11] = cc*r11 + cs*(m01+m10) - ss*r00
			im[i11] = cc*m11 - cs*(r01+r10) - ss*m00
		}
	})
	q := 2
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(re)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i00 := (t>>uint(q))<<uint(q+2) | (t & mask)
				i01 := i00 + stride
				i10 := i00 + 2*stride
				i11 := i01 + 2*stride
				r00, m00 := re[i00], im[i00]
				r01, m01 := re[i01], im[i01]
				r10, m10 := re[i10], im[i10]
				r11, m11 := re[i11], im[i11]
				re[i00] = cc*r00 + cs*(m01+m10) - ss*r11
				im[i00] = cc*m00 - cs*(r01+r10) - ss*m11
				re[i01] = cc*r01 + cs*(m00+m11) - ss*r10
				im[i01] = cc*m01 - cs*(r00+r11) - ss*m10
				re[i10] = cc*r10 + cs*(m00+m11) - ss*r01
				im[i10] = cc*m10 - cs*(r00+r11) - ss*m01
				re[i11] = cc*r11 + cs*(m01+m10) - ss*r00
				im[i11] = cc*m11 - cs*(r01+r10) - ss*m00
			}
		})
	}
	if q < n {
		s.ApplyRX(p, q, beta)
	}
}
