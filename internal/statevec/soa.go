package statevec

import (
	"fmt"
	"math"
)

// SoA is the structure-of-arrays state representation: amplitudes as
// separate real and imaginary float64 slices. Splitting the layout
// lets the mixer kernel use only real multiply–adds with unit-stride
// loads, the same reason the paper's cuStateVec backend beats the
// straightforward kernels by ≈2× (§V-A). The SoA simulator keeps the
// state in this form for the whole QAOA evolution and converts at the
// API boundary only.
type SoA struct {
	Re, Im []float64
}

// NewSoA allocates the zero state (all amplitudes 0) for n qubits in
// SoA form — a reusable buffer for SetFromVec-style workflows.
func NewSoA(n int) *SoA {
	checkQubits(n)
	size := 1 << uint(n)
	return &SoA{Re: make([]float64, size), Im: make([]float64, size)}
}

// NewSoAUniform returns |+⟩^⊗n in SoA form.
func NewSoAUniform(n int) *SoA {
	checkQubits(n)
	size := 1 << uint(n)
	s := &SoA{Re: make([]float64, size), Im: make([]float64, size)}
	amp := 1 / math.Sqrt(float64(size))
	for i := range s.Re {
		s.Re[i] = amp
	}
	return s
}

// SoAFromVec converts a complex128 vector into SoA form.
func SoAFromVec(v Vec) *SoA {
	s := &SoA{Re: make([]float64, len(v)), Im: make([]float64, len(v))}
	for i, a := range v {
		s.Re[i] = real(a)
		s.Im[i] = imag(a)
	}
	return s
}

// SetFromVec overwrites the state with v without allocating — the
// buffer-reuse path batch evaluation depends on (each worker resets
// its state to the initial vector instead of building a fresh SoA per
// parameter point). It panics on length mismatch.
func (s *SoA) SetFromVec(v Vec) {
	if len(s.Re) != len(v) {
		panic(fmt.Sprintf("statevec: SetFromVec length mismatch %d vs %d", len(s.Re), len(v)))
	}
	for i, a := range v {
		s.Re[i] = real(a)
		s.Im[i] = imag(a)
	}
}

// ToVec converts back to the interleaved complex128 representation.
func (s *SoA) ToVec() Vec {
	v := make(Vec, len(s.Re))
	for i := range v {
		v[i] = complex(s.Re[i], s.Im[i])
	}
	return v
}

// Len returns the number of amplitudes.
func (s *SoA) Len() int { return len(s.Re) }

// NumQubits returns n for a 2^n-length state.
func (s *SoA) NumQubits() int { return numQubits(len(s.Re)) }

// ApplyRX applies e^{−iβX} on qubit q with pure real arithmetic:
//
//	re1' =  c·re1 + s·im2    im1' = c·im1 − s·re2
//	re2' =  c·re2 + s·im1    im2' = c·im2 − s·re1
//
// (c = cos β, s = sin β), which is [[c, −is], [−is, c]] expanded.
func (s *SoA) ApplyRX(p *Pool, q int, beta float64) {
	n := s.NumQubits()
	if q < 0 || q >= n {
		panic(fmt.Sprintf("statevec: qubit %d out of range for n=%d", q, n))
	}
	sn, cs := math.Sincos(beta)
	stride := 1 << uint(q)
	mask := stride - 1
	re, im := s.Re, s.Im
	p.Run(len(re)/2, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			l1 := (t>>uint(q))<<uint(q+1) | (t & mask)
			l2 := l1 + stride
			r1, i1 := re[l1], im[l1]
			r2, i2 := re[l2], im[l2]
			re[l1] = cs*r1 + sn*i2
			im[l1] = cs*i1 - sn*r2
			re[l2] = cs*r2 + sn*i1
			im[l2] = cs*i2 - sn*r1
		}
	})
}

// ApplyUniformRX sweeps ApplyRX over all qubits (Algorithm 2).
func (s *SoA) ApplyUniformRX(p *Pool, beta float64) {
	n := s.NumQubits()
	for q := 0; q < n; q++ {
		s.ApplyRX(p, q, beta)
	}
}

// ApplyXY applies e^{−iβ(XX+YY)/2} on the pair (i, j); the rotated
// amplitude pair update is identical in form to ApplyRX.
func (s *SoA) ApplyXY(p *Pool, i, j int, beta float64) {
	if i == j {
		panic("statevec: ApplyXY requires distinct qubits")
	}
	n := s.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ApplyXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	sn, cs := math.Sincos(beta)
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	re, im := s.Re, s.Im
	p.Run(len(re)>>2, func(from, to int) {
		for t := from; t < to; t++ {
			base := expand2(t, lo, hi)
			xa := base | maskI
			xb := base | maskJ
			ra, ia := re[xa], im[xa]
			rb, ib := re[xb], im[xb]
			re[xa] = cs*ra + sn*ib
			im[xa] = cs*ia - sn*rb
			re[xb] = cs*rb + sn*ia
			im[xb] = cs*ib - sn*ra
		}
	})
}

// PhaseDiag multiplies amplitude x by e^{−iγ·diag_x} in place.
func (s *SoA) PhaseDiag(p *Pool, diag []float64, gamma float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: PhaseDiag length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	re, im := s.Re, s.Im
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sn, cs := math.Sincos(-gamma * diag[i])
			r, m := re[i], im[i]
			re[i] = r*cs - m*sn
			im[i] = r*sn + m*cs
		}
	})
}

// PhaseFactors multiplies amplitude x elementwise by the precomputed
// unit phases (cosTab[x], sinTab[x]); the uint16-quantized phase path
// in internal/costvec feeds table-looked-up factors through this.
func (s *SoA) PhaseFactors(p *Pool, cosTab, sinTab []float64) {
	if len(s.Re) != len(cosTab) || len(s.Re) != len(sinTab) {
		panic("statevec: PhaseFactors length mismatch")
	}
	re, im := s.Re, s.Im
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r, m := re[i], im[i]
			cs, sn := cosTab[i], sinTab[i]
			re[i] = r*cs - m*sn
			im[i] = r*sn + m*cs
		}
	})
}

// ExpectationDiag returns Σ_x diag_x (re_x² + im_x²).
func (s *SoA) ExpectationDiag(p *Pool, diag []float64) float64 {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ExpectationDiag length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	re, im := s.Re, s.Im
	return p.Reduce(len(re), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += diag[i] * (re[i]*re[i] + im[i]*im[i])
		}
		return acc
	})
}

// NormSquared returns ‖ψ‖₂².
func (s *SoA) NormSquared(p *Pool) float64 {
	re, im := s.Re, s.Im
	return p.Reduce(len(re), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += re[i]*re[i] + im[i]*im[i]
		}
		return acc
	})
}

// Probabilities writes |ψ_x|² into dst.
func (s *SoA) Probabilities(dst []float64) []float64 {
	if cap(dst) < len(s.Re) {
		dst = make([]float64, len(s.Re))
	}
	dst = dst[:len(s.Re)]
	for i := range dst {
		dst[i] = s.Re[i]*s.Re[i] + s.Im[i]*s.Im[i]
	}
	return dst
}
