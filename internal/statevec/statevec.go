// Package statevec is the state-vector substrate of the simulator: a
// dense 2^n complex128 amplitude vector together with the in-place
// kernels the QOKit paper builds on — the strided SU(2) pair update of
// Algorithm 1, the uniform SU(2) transform of Algorithm 2, the SU(4)
// pair kernel behind the xy mixers, diagonal (phase) multiplication,
// the fast Walsh–Hadamard transform, and the reductions (norm, inner
// product, diagonal expectation) that evaluate the QAOA objective.
//
// Each kernel comes in three flavours:
//   - a serial complex128 version (the portable reference),
//   - a worker-pool version (Pool), the CPU analogue of the paper's
//     CUDA grid: the index space is split into independent chunks, and
//   - a split real/imaginary (SoA) version in soa.go, the analogue of
//     the vendor-tuned cuStateVec kernels.
package statevec

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Vec is a dense state vector of 2^n complex amplitudes. Index x is
// the computational basis state whose qubit i equals bit i of x
// (little-endian).
type Vec []complex128

// New allocates the zero vector (all amplitudes 0) for n qubits.
func New(n int) Vec {
	checkQubits(n)
	return make(Vec, 1<<uint(n))
}

// NewBasis returns |x⟩ for n qubits.
func NewBasis(n int, x uint64) Vec {
	v := New(n)
	if x >= uint64(len(v)) {
		panic(fmt.Sprintf("statevec: basis state %d out of range for n=%d", x, n))
	}
	v[x] = 1
	return v
}

// NewUniform returns |+⟩^⊗n, the standard QAOA initial state.
func NewUniform(n int) Vec {
	v := New(n)
	amp := complex(1/math.Sqrt(float64(len(v))), 0)
	for i := range v {
		v[i] = amp
	}
	return v
}

// NewDicke returns the Dicke state |D^n_k⟩: the uniform superposition
// of all weight-k basis states. It is the standard initial state for
// Hamming-weight-preserving xy mixers (the paper's §III-B mixers).
func NewDicke(n, k int) Vec {
	if k < 0 || k > n {
		panic(fmt.Sprintf("statevec: Dicke weight k=%d out of range [0,%d]", k, n))
	}
	v := New(n)
	count := binomial(n, k)
	amp := complex(1/math.Sqrt(float64(count)), 0)
	for x := range v {
		if bits.OnesCount64(uint64(x)) == k {
			v[x] = amp
		}
	}
	return v
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
	}
	return c
}

func checkQubits(n int) {
	if n < 0 || n > 40 {
		panic(fmt.Sprintf("statevec: n=%d out of supported range [0,40]", n))
	}
}

// NumQubits returns n for a 2^n-length vector; it panics if the length
// is not a power of two.
func (v Vec) NumQubits() int { return numQubits(len(v)) }

func numQubits(length int) int {
	n := bits.TrailingZeros(uint(length))
	if length == 0 || 1<<uint(n) != length {
		panic(fmt.Sprintf("statevec: length %d is not a power of two", length))
	}
	return n
}

// Clone returns a deep copy.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Norm returns ‖v‖₂.
func (v Vec) Norm() float64 {
	var s float64
	for _, a := range v {
		s += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(s)
}

// Normalize rescales v to unit norm in place; it is a no-op for the
// zero vector.
func (v Vec) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	inv := complex(1/n, 0)
	for i := range v {
		v[i] *= inv
	}
}

// Probabilities writes |v_x|² into dst (allocating it if nil or too
// short) and returns it. This is the paper's get_probabilities output
// method.
func (v Vec) Probabilities(dst []float64) []float64 {
	if cap(dst) < len(v) {
		dst = make([]float64, len(v))
	}
	dst = dst[:len(v)]
	for i, a := range v {
		dst[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return dst
}

// Dot returns ⟨a|b⟩ = Σ_x conj(a_x)·b_x. It panics on length mismatch.
func Dot(a, b Vec) complex128 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("statevec: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var re, im float64
	for i := range a {
		ar, ai := real(a[i]), imag(a[i])
		br, bi := real(b[i]), imag(b[i])
		re += ar*br + ai*bi
		im += ar*bi - ai*br
	}
	return complex(re, im)
}

// ExpectationDiag returns ⟨v| diag |v⟩ = Σ_x diag_x |v_x|², the paper's
// single-inner-product objective evaluation (§III-A). It panics on
// length mismatch.
func ExpectationDiag(v Vec, diag []float64) float64 {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: ExpectationDiag length mismatch %d vs %d", len(v), len(diag)))
	}
	var s float64
	for i, a := range v {
		s += diag[i] * (real(a)*real(a) + imag(a)*imag(a))
	}
	return s
}

// OverlapStates returns Σ_{x∈states} |v_x|², the probability of
// measuring any of the given basis states (the paper's get_overlap
// with the ground-state set).
func OverlapStates(v Vec, states []uint64) float64 {
	var s float64
	for _, x := range states {
		a := v[x]
		s += real(a)*real(a) + imag(a)*imag(a)
	}
	return s
}

// MaxAbsDiff returns max_x |a_x − b_x|, used by tests to compare
// simulator backends.
func MaxAbsDiff(a, b Vec) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("statevec: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// PhaseDiag multiplies each amplitude by e^{−iγ·diag_x} in place: the
// QAOA phase operator applied from the precomputed cost diagonal
// (Algorithm 3, step 4).
func PhaseDiag(v Vec, diag []float64, gamma float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: PhaseDiag length mismatch %d vs %d", len(v), len(diag)))
	}
	for i := range v {
		s, c := math.Sincos(-gamma * diag[i])
		v[i] *= complex(c, s)
	}
}
