package statevec

import "math"

// ApplyUniformRXFused applies the transverse-field mixer e^{−iβΣX_i}
// with qubits processed two at a time: each pass applies the 4×4
// tensor product RX(β)⊗RX(β) to a quadruple of amplitudes, halving the
// number of passes over the state vector compared to Algorithm 2's
// per-qubit sweeps. This is the paper's §VI "gate fusion with F = 2"
// applied to the one place it still helps after diagonal
// precomputation — the mixer — and is the ablation target measuring
// how memory-bound the mixer sweep is. Odd n finishes with one
// single-qubit sweep.
//
// The fused 4×4 block for U = [[c, −is], [−is, c]] ⊗ same is
//
//	[ cc   −ics  −ics  −ss ]
//	[ −ics  cc   −ss   −ics]
//	[ −ics  −ss   cc   −ics]
//	[ −ss  −ics  −ics   cc ]
//
// with cc = cos²β, ss = sin²β, cs = cosβ·sinβ.
func ApplyUniformRXFused(v Vec, beta float64) {
	n := v.NumQubits()
	s, c := math.Sincos(beta)
	cc := complex(c*c, 0)
	ss := complex(-s*s, 0)
	ics := complex(0, -c*s)
	q := 0
	for ; q+1 < n; q += 2 {
		applyFusedRXPair(v, q, cc, ss, ics)
	}
	if q < n {
		ApplySU2(v, q, complex(c, 0), complex(0, -s))
	}
}

// applyFusedRXPair applies RX⊗RX on adjacent qubits (q, q+1). The
// quadruple (i00, i01, i10, i11) shares all other bits, so with
// adjacent qubits the four amplitudes sit in two contiguous runs —
// the cache-friendly case the fused sweep exploits.
func applyFusedRXPair(v Vec, q int, cc, ss, ics complex128) {
	stride := 1 << uint(q)
	for base := 0; base < len(v); base += 4 * stride {
		for off := 0; off < stride; off++ {
			i00 := base + off
			i01 := i00 + stride
			i10 := i00 + 2*stride
			i11 := i01 + 2*stride
			y00, y01, y10, y11 := v[i00], v[i01], v[i10], v[i11]
			v[i00] = cc*y00 + ics*y01 + ics*y10 + ss*y11
			v[i01] = ics*y00 + cc*y01 + ss*y10 + ics*y11
			v[i10] = ics*y00 + ss*y01 + cc*y10 + ics*y11
			v[i11] = ss*y00 + ics*y01 + ics*y10 + cc*y11
		}
	}
}

// ApplyUniformRXFusedPool is the worker-pool version of the fused
// mixer: each pass parallelizes over the quadruple index space.
func (p *Pool) ApplyUniformRXFused(v Vec, beta float64) {
	n := v.NumQubits()
	s, c := math.Sincos(beta)
	cc := complex(c*c, 0)
	ss := complex(-s*s, 0)
	ics := complex(0, -c*s)
	q := 0
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(v)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i00 := (t>>uint(q))<<uint(q+2) | (t & mask)
				i01 := i00 + stride
				i10 := i00 + 2*stride
				i11 := i01 + 2*stride
				y00, y01, y10, y11 := v[i00], v[i01], v[i10], v[i11]
				v[i00] = cc*y00 + ics*y01 + ics*y10 + ss*y11
				v[i01] = ics*y00 + cc*y01 + ss*y10 + ics*y11
				v[i10] = ics*y00 + ss*y01 + cc*y10 + ics*y11
				v[i11] = ss*y00 + ics*y01 + ics*y10 + cc*y11
			}
		})
	}
	if q < n {
		p.ApplySU2(v, q, complex(c, 0), complex(0, -s))
	}
}

// ApplyUniformRXFused is the SoA version of the fused two-qubit mixer
// sweep, composing the split layout with F = 2 fusion — the fastest
// single-node mixer in this package.
func (sv *SoA) ApplyUniformRXFused(p *Pool, beta float64) {
	n := sv.NumQubits()
	s, c := math.Sincos(beta)
	cc := c * c
	ss := s * s
	cs := c * s
	re, im := sv.Re, sv.Im
	q := 0
	for ; q+1 < n; q += 2 {
		stride := 1 << uint(q)
		mask := stride - 1
		p.Run(len(re)/4, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				i00 := (t>>uint(q))<<uint(q+2) | (t & mask)
				i01 := i00 + stride
				i10 := i00 + 2*stride
				i11 := i01 + 2*stride
				r00, m00 := re[i00], im[i00]
				r01, m01 := re[i01], im[i01]
				r10, m10 := re[i10], im[i10]
				r11, m11 := re[i11], im[i11]
				// (cc − i·cs·(01+10) − ss·(11)) pattern expanded into
				// real arithmetic: −i·x has re = im(x), im = −re(x).
				re[i00] = cc*r00 + cs*(m01+m10) - ss*r11
				im[i00] = cc*m00 - cs*(r01+r10) - ss*m11
				re[i01] = cc*r01 + cs*(m00+m11) - ss*r10
				im[i01] = cc*m01 - cs*(r00+r11) - ss*m10
				re[i10] = cc*r10 + cs*(m00+m11) - ss*r01
				im[i10] = cc*m10 - cs*(r00+r11) - ss*m01
				re[i11] = cc*r11 + cs*(m01+m10) - ss*r00
				im[i11] = cc*m11 - cs*(r01+r10) - ss*m00
			}
		})
	}
	if q < n {
		sv.ApplyRX(p, q, beta)
	}
}
