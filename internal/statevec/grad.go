package statevec

import "fmt"

// This file holds the derivative-accumulation kernels behind the
// adjoint-mode gradient engine (internal/core.SimulateQAOAGrad). The
// adjoint method walks the QAOA circuit backwards with two states —
// the ket ψ and the cost-weighted bra λ = Ĉ|ψ⟩ — and reads every
// parameter derivative off a reduction of the pair:
//
//	∂E/∂γ_ℓ = 2·Im ⟨λ|Ĉ|ψ⟩          (ImDotDiag against the diagonal)
//	∂E/∂β_ℓ = 2·Σ_q Im ⟨λ|X_q|ψ⟩    (ImDotXAll, fused over qubits)
//	∂E/∂β_ℓ = 2·Σ_e Im ⟨λ|H_e|ψ⟩    (ImDotXY per edge, xy mixers)
//
// Each reduction costs one pass over the pair — the same order as the
// mixer sweep it differentiates — so a full 2p-parameter gradient is
// O(1) extra state evolutions, independent of p. Like every other
// kernel in this package, the reductions come in four flavours:
// serial complex128, worker-pool complex128, SoA float64, and SoA32
// single precision (always accumulating in float64).

// MulDiag multiplies amplitude x by the real scalar diag_x in place:
// ψ ← Ĉ|ψ⟩ for a diagonal observable, the "cost-weighted" seed of the
// adjoint reverse pass. It panics on length mismatch.
func MulDiag(v Vec, diag []float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: MulDiag length mismatch %d vs %d", len(v), len(diag)))
	}
	for i := range v {
		v[i] *= complex(diag[i], 0)
	}
}

// MulDiag is the pool version of the diagonal-observable multiply.
func (p *Pool) MulDiag(v Vec, diag []float64) {
	if len(v) != len(diag) {
		panic(fmt.Sprintf("statevec: MulDiag length mismatch %d vs %d", len(v), len(diag)))
	}
	p.Run(len(v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= complex(diag[i], 0)
		}
	})
}

// ImDotDiag returns Σ_x diag_x · Im(conj(lam_x)·psi_x) = Im ⟨λ|Ĉ|ψ⟩:
// the phase-operator derivative reduction. It panics on length
// mismatch.
func ImDotDiag(lam, psi Vec, diag []float64) float64 {
	if len(lam) != len(psi) || len(lam) != len(diag) {
		panic(fmt.Sprintf("statevec: ImDotDiag length mismatch %d/%d/%d", len(lam), len(psi), len(diag)))
	}
	var s float64
	for i := range lam {
		s += diag[i] * (real(lam[i])*imag(psi[i]) - imag(lam[i])*real(psi[i]))
	}
	return s
}

// ImDotDiag is the pool version of the phase-derivative reduction.
func (p *Pool) ImDotDiag(lam, psi Vec, diag []float64) float64 {
	if len(lam) != len(psi) || len(lam) != len(diag) {
		panic(fmt.Sprintf("statevec: ImDotDiag length mismatch %d/%d/%d", len(lam), len(psi), len(diag)))
	}
	return p.Reduce(len(lam), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += diag[i] * (real(lam[i])*imag(psi[i]) - imag(lam[i])*real(psi[i]))
		}
		return s
	})
}

// ImDotXAll returns Σ_q Im ⟨λ|X_q|ψ⟩ — the whole transverse-field
// mixer derivative in one pass over the pair, with the qubit loop
// innermost so the reduction costs one kernel launch instead of n.
func ImDotXAll(lam, psi Vec) float64 {
	if len(lam) != len(psi) {
		panic(fmt.Sprintf("statevec: ImDotXAll length mismatch %d vs %d", len(lam), len(psi)))
	}
	n := lam.NumQubits()
	var s float64
	for i := range lam {
		lr, li := real(lam[i]), imag(lam[i])
		for q := 0; q < n; q++ {
			j := i ^ (1 << uint(q))
			s += lr*imag(psi[j]) - li*real(psi[j])
		}
	}
	return s
}

// ImDotXRange returns Σ_{q∈[lo,hi)} Im ⟨λ|X_q|ψ⟩ — ImDotXAll
// restricted to a contiguous qubit range. The distributed adjoint
// gradient uses it to split the transverse-field mixer derivative at
// the shard boundary: each rank reduces its local qubits with
// ImDotXAll, transposes, and reduces the k global qubits (then local,
// at the top of the slice) with this kernel. Both reductions are
// invariant under the commuting RX undo sweeps, so the split sums to
// the single-node value exactly.
func ImDotXRange(lam, psi Vec, lo, hi int) float64 {
	if len(lam) != len(psi) {
		panic(fmt.Sprintf("statevec: ImDotXRange length mismatch %d vs %d", len(lam), len(psi)))
	}
	n := lam.NumQubits()
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("statevec: ImDotXRange qubit range [%d,%d) invalid for n=%d", lo, hi, n))
	}
	var s float64
	for i := range lam {
		lr, li := real(lam[i]), imag(lam[i])
		for q := lo; q < hi; q++ {
			j := i ^ (1 << uint(q))
			s += lr*imag(psi[j]) - li*real(psi[j])
		}
	}
	return s
}

// ImDotXAll is the pool version of the fused mixer-derivative
// reduction.
func (p *Pool) ImDotXAll(lam, psi Vec) float64 {
	if len(lam) != len(psi) {
		panic(fmt.Sprintf("statevec: ImDotXAll length mismatch %d vs %d", len(lam), len(psi)))
	}
	n := lam.NumQubits()
	return p.Reduce(len(lam), func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			lr, li := real(lam[i]), imag(lam[i])
			for q := 0; q < n; q++ {
				j := i ^ (1 << uint(q))
				s += lr*imag(psi[j]) - li*real(psi[j])
			}
		}
		return s
	})
}

// ImDotXY returns Im ⟨λ|H_e|ψ⟩ for H_e = (X_iX_j + Y_iY_j)/2, which
// swaps each (|…1_i…0_j…⟩, |…0_i…1_j…⟩) amplitude pair and annihilates
// the rest — the per-edge xy-mixer derivative reduction.
func ImDotXY(lam, psi Vec, i, j int) float64 {
	if i == j {
		panic("statevec: ImDotXY requires distinct qubits")
	}
	n := lam.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ImDotXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	if len(lam) != len(psi) {
		panic(fmt.Sprintf("statevec: ImDotXY length mismatch %d vs %d", len(lam), len(psi)))
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	quarter := len(lam) >> 2
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	var s float64
	for t := 0; t < quarter; t++ {
		base := expand2(t, lo, hi)
		xa := base | maskI
		xb := base | maskJ
		s += real(lam[xa])*imag(psi[xb]) - imag(lam[xa])*real(psi[xb])
		s += real(lam[xb])*imag(psi[xa]) - imag(lam[xb])*real(psi[xa])
	}
	return s
}

// ImDotXY is the pool version of the per-edge xy-derivative reduction.
func (p *Pool) ImDotXY(lam, psi Vec, i, j int) float64 {
	if i == j {
		panic("statevec: ImDotXY requires distinct qubits")
	}
	n := lam.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ImDotXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	if len(lam) != len(psi) {
		panic(fmt.Sprintf("statevec: ImDotXY length mismatch %d vs %d", len(lam), len(psi)))
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	return p.Reduce(len(lam)>>2, func(from, to int) float64 {
		var s float64
		for t := from; t < to; t++ {
			base := expand2(t, lo, hi)
			xa := base | maskI
			xb := base | maskJ
			s += real(lam[xa])*imag(psi[xb]) - imag(lam[xa])*real(psi[xb])
			s += real(lam[xb])*imag(psi[xa]) - imag(lam[xb])*real(psi[xa])
		}
		return s
	})
}

// Copy overwrites s with src without allocating; it panics on length
// mismatch. The adjoint reverse pass uses it to seed λ from ψ.
func (s *SoA) Copy(src *SoA) {
	if len(s.Re) != len(src.Re) {
		panic(fmt.Sprintf("statevec: Copy length mismatch %d vs %d", len(s.Re), len(src.Re)))
	}
	copy(s.Re, src.Re)
	copy(s.Im, src.Im)
}

// MulDiag multiplies amplitude x by diag_x in place (SoA layout: one
// real scale per component slice).
func (s *SoA) MulDiag(p *Pool, diag []float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: MulDiag length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	re, im := s.Re, s.Im
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			re[i] *= diag[i]
			im[i] *= diag[i]
		}
	})
}

// ImDotDiag returns Im ⟨λ|Ĉ|ψ⟩ with s as λ and psi as ψ.
func (s *SoA) ImDotDiag(p *Pool, psi *SoA, diag []float64) float64 {
	if len(s.Re) != len(psi.Re) || len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ImDotDiag length mismatch %d/%d/%d", len(s.Re), len(psi.Re), len(diag)))
	}
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += diag[i] * (lr[i]*pi[i] - li[i]*pr[i])
		}
		return acc
	})
}

// ImDotXAll returns Σ_q Im ⟨λ|X_q|ψ⟩ in one fused pass with s as λ.
func (s *SoA) ImDotXAll(p *Pool, psi *SoA) float64 {
	if len(s.Re) != len(psi.Re) {
		panic(fmt.Sprintf("statevec: ImDotXAll length mismatch %d vs %d", len(s.Re), len(psi.Re)))
	}
	n := s.NumQubits()
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			r, m := lr[i], li[i]
			for q := 0; q < n; q++ {
				j := i ^ (1 << uint(q))
				acc += r*pi[j] - m*pr[j]
			}
		}
		return acc
	})
}

// ImDotXY returns Im ⟨λ|H_e|ψ⟩ for the xy edge term with s as λ.
func (s *SoA) ImDotXY(p *Pool, psi *SoA, i, j int) float64 {
	if i == j {
		panic("statevec: ImDotXY requires distinct qubits")
	}
	n := s.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ImDotXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	if len(s.Re) != len(psi.Re) {
		panic(fmt.Sprintf("statevec: ImDotXY length mismatch %d vs %d", len(s.Re), len(psi.Re)))
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr)>>2, func(from, to int) float64 {
		var acc float64
		for t := from; t < to; t++ {
			base := expand2(t, lo, hi)
			xa := base | maskI
			xb := base | maskJ
			acc += lr[xa]*pi[xb] - li[xa]*pr[xb]
			acc += lr[xb]*pi[xa] - li[xb]*pr[xa]
		}
		return acc
	})
}

// Copy overwrites s with src without allocating; it panics on length
// mismatch.
func (s *SoA32) Copy(src *SoA32) {
	if len(s.Re) != len(src.Re) {
		panic(fmt.Sprintf("statevec: Copy length mismatch %d vs %d", len(s.Re), len(src.Re)))
	}
	copy(s.Re, src.Re)
	copy(s.Im, src.Im)
}

// MulDiag multiplies amplitude x by diag_x in place. The product is
// formed in float64 and rounded once on store.
func (s *SoA32) MulDiag(p *Pool, diag []float64) {
	if len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: MulDiag length mismatch %d vs %d", len(s.Re), len(diag)))
	}
	re, im := s.Re, s.Im
	p.Run(len(re), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			re[i] = float32(float64(re[i]) * diag[i])
			im[i] = float32(float64(im[i]) * diag[i])
		}
	})
}

// ImDotDiag returns Im ⟨λ|Ĉ|ψ⟩ with s as λ, accumulated in float64.
func (s *SoA32) ImDotDiag(p *Pool, psi *SoA32, diag []float64) float64 {
	if len(s.Re) != len(psi.Re) || len(s.Re) != len(diag) {
		panic(fmt.Sprintf("statevec: ImDotDiag length mismatch %d/%d/%d", len(s.Re), len(psi.Re), len(diag)))
	}
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			acc += diag[i] * (float64(lr[i])*float64(pi[i]) - float64(li[i])*float64(pr[i]))
		}
		return acc
	})
}

// ImDotXAll returns Σ_q Im ⟨λ|X_q|ψ⟩ in one fused pass with s as λ,
// accumulated in float64.
func (s *SoA32) ImDotXAll(p *Pool, psi *SoA32) float64 {
	if len(s.Re) != len(psi.Re) {
		panic(fmt.Sprintf("statevec: ImDotXAll length mismatch %d vs %d", len(s.Re), len(psi.Re)))
	}
	n := s.NumQubits()
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr), func(lo, hi int) float64 {
		var acc float64
		for i := lo; i < hi; i++ {
			r, m := float64(lr[i]), float64(li[i])
			for q := 0; q < n; q++ {
				j := i ^ (1 << uint(q))
				acc += r*float64(pi[j]) - m*float64(pr[j])
			}
		}
		return acc
	})
}

// ImDotXRange returns Σ_{q∈[lo,hi)} Im ⟨λ|X_q|ψ⟩ with s as λ,
// accumulated in float64 — the SoA32 counterpart of the complex128
// ImDotXRange the distributed adjoint gradient splits the transverse-
// field mixer derivative with: local qubits reduce with ImDotXAll in
// the sharded layout, the k global qubits reduce with this kernel in
// the transposed layout.
func (s *SoA32) ImDotXRange(p *Pool, psi *SoA32, lo, hi int) float64 {
	if len(s.Re) != len(psi.Re) {
		panic(fmt.Sprintf("statevec: ImDotXRange length mismatch %d vs %d", len(s.Re), len(psi.Re)))
	}
	n := s.NumQubits()
	if lo < 0 || hi > n || lo > hi {
		panic(fmt.Sprintf("statevec: ImDotXRange qubit range [%d,%d) invalid for n=%d", lo, hi, n))
	}
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr), func(from, to int) float64 {
		var acc float64
		for i := from; i < to; i++ {
			r, m := float64(lr[i]), float64(li[i])
			for q := lo; q < hi; q++ {
				j := i ^ (1 << uint(q))
				acc += r*float64(pi[j]) - m*float64(pr[j])
			}
		}
		return acc
	})
}

// ImDotXY returns Im ⟨λ|H_e|ψ⟩ for the xy edge term with s as λ,
// accumulated in float64.
func (s *SoA32) ImDotXY(p *Pool, psi *SoA32, i, j int) float64 {
	if i == j {
		panic("statevec: ImDotXY requires distinct qubits")
	}
	n := s.NumQubits()
	if i < 0 || i >= n || j < 0 || j >= n {
		panic(fmt.Sprintf("statevec: ImDotXY qubits (%d,%d) out of range for n=%d", i, j, n))
	}
	if len(s.Re) != len(psi.Re) {
		panic(fmt.Sprintf("statevec: ImDotXY length mismatch %d vs %d", len(s.Re), len(psi.Re)))
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	maskI, maskJ := 1<<uint(i), 1<<uint(j)
	lr, li := s.Re, s.Im
	pr, pi := psi.Re, psi.Im
	return p.Reduce(len(lr)>>2, func(from, to int) float64 {
		var acc float64
		for t := from; t < to; t++ {
			base := expand2(t, lo, hi)
			xa := base | maskI
			xb := base | maskJ
			acc += float64(lr[xa])*float64(pi[xb]) - float64(li[xa])*float64(pr[xb])
			acc += float64(lr[xb])*float64(pi[xa]) - float64(li[xb])*float64(pr[xa])
		}
		return acc
	})
}
