// Package sampling draws measurement outcomes from a simulated QAOA
// state. On hardware, QAOA's output is a stream of sampled bitstrings;
// the quantities the paper's companion studies build on — expected
// solution quality from finite shots, and the expected number of
// samples before the optimal solution appears (the time-to-solution
// metric of the LABS scaling analysis the paper enables, Refs. [5],
// [6]) — are estimated from exactly this sampling process.
//
// The sampler uses Walker's alias method: O(2^n) preprocessing, O(1)
// per draw, which matters when millions of shots are drawn from a
// 2^n-point distribution.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler draws indices from a fixed discrete distribution.
//
// A Sampler is NOT safe for concurrent use: every draw mutates the
// shared rand.Rand. Concurrent consumers (the serve pool's workers, a
// sharded sampling stage) must each hold their own sampler — Split
// derives one per goroutine in O(1), sharing the alias tables
// read-only.
type Sampler struct {
	prob  []float64 // alias-method acceptance probabilities
	alias []int
	rng   *rand.Rand
}

// NewSampler builds a seeded sampler over probs (non-negative; any
// positive total is normalized away, so unnormalized |ψ|² vectors are
// accepted directly).
func NewSampler(probs []float64, seed int64) (*Sampler, error) {
	n := len(probs)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty distribution")
	}
	var total float64
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("sampling: probability %v at index %d", p, i)
		}
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: zero total probability")
	}

	// Walker alias construction: scale to mean 1, split into small
	// (< 1) and large (≥ 1) buckets, pair them off.
	scaled := make([]float64, n)
	for i, p := range probs {
		scaled[i] = p * float64(n) / total
	}
	s := &Sampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
		rng:   rand.New(rand.NewSource(seed)),
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			large = large[:len(large)-1]
			small = append(small, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s, nil
}

// Split returns a new sampler over the same distribution with an
// independent RNG stream seeded by seed. The alias tables are shared
// read-only — O(1), no rebuild — so a pool can hand each worker
// goroutine its own stream while paying the O(2^n) construction once.
// Draws from the parent and a split sampler are independent streams;
// neither is safe to share across goroutines.
func (s *Sampler) Split(seed int64) *Sampler {
	return &Sampler{prob: s.prob, alias: s.alias, rng: rand.New(rand.NewSource(seed))}
}

// Sample draws one index.
func (s *Sampler) Sample() uint64 {
	i := s.rng.Intn(len(s.prob))
	if s.rng.Float64() < s.prob[i] {
		return uint64(i)
	}
	return uint64(s.alias[i])
}

// SampleN draws k indices.
func (s *Sampler) SampleN(k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}

// Counts tallies samples into a histogram.
func Counts(samples []uint64) map[uint64]int {
	h := make(map[uint64]int)
	for _, x := range samples {
		h[x]++
	}
	return h
}

// EstimateExpectation returns the sample mean and standard error of
// cost over the samples — the finite-shot estimate of ⟨ψ|Ĉ|ψ⟩ a
// hardware run would produce. The variance is accumulated with
// Welford's online update: the textbook sumSq − sum²/n form cancels
// catastrophically when |mean| ≫ stddev (a large constant cost offset
// would turn the standard error into noise, or a negative number),
// while Welford's recurrence subtracts the running mean before
// squaring and stays accurate at any offset.
func EstimateExpectation(samples []uint64, cost func(uint64) float64) (mean, stderr float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	var m2 float64
	for i, x := range samples {
		c := cost(x)
		d := c - mean
		mean += d / float64(i+1)
		m2 += d * (c - mean)
	}
	if n > 1 {
		variance := m2 / float64(n-1)
		if variance > 0 {
			stderr = math.Sqrt(variance / float64(n))
		}
	}
	return mean, stderr
}

// Best returns the lowest-cost sample and its cost.
func Best(samples []uint64, cost func(uint64) float64) (argmin uint64, min float64) {
	if len(samples) == 0 {
		return 0, math.Inf(1)
	}
	argmin, min = samples[0], cost(samples[0])
	for _, x := range samples[1:] {
		if c := cost(x); c < min {
			argmin, min = x, c
		}
	}
	return argmin, min
}

// SamplesToSolution returns the expected number of independent shots
// needed to observe an optimal solution at least once with the given
// confidence, from the state's ground-state overlap p:
//
//	N = ln(1 − confidence) / ln(1 − p).
//
// This is the shots side of the time-to-solution metric in the LABS
// scaling analysis (Ref. [6]) and the sampling-frequency-threshold
// question of Ref. [5].
//
// Domain semantics: overlap ≤ 0 returns +Inf (the optimum is never
// sampled), overlap ≥ 1 returns 1 (every shot is optimal) — both
// without error, since they are legitimate limits that overlap
// estimates reach through rounding. A NaN overlap and a confidence
// outside (0, 1) are caller bugs and return an error; nothing is
// silently rewritten.
func SamplesToSolution(overlap, confidence float64) (float64, error) {
	if math.IsNaN(overlap) {
		return 0, fmt.Errorf("sampling: SamplesToSolution overlap is NaN")
	}
	if math.IsNaN(confidence) || confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("sampling: SamplesToSolution confidence %v outside (0, 1)", confidence)
	}
	if overlap <= 0 {
		return math.Inf(1), nil
	}
	if overlap >= 1 {
		return 1, nil
	}
	return math.Log(1-confidence) / math.Log(1-overlap), nil
}
