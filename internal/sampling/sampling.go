// Package sampling draws measurement outcomes from a simulated QAOA
// state. On hardware, QAOA's output is a stream of sampled bitstrings;
// the quantities the paper's companion studies build on — expected
// solution quality from finite shots, and the expected number of
// samples before the optimal solution appears (the time-to-solution
// metric of the LABS scaling analysis the paper enables, Refs. [5],
// [6]) — are estimated from exactly this sampling process.
//
// The sampler uses Walker's alias method: O(2^n) preprocessing, O(1)
// per draw, which matters when millions of shots are drawn from a
// 2^n-point distribution.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler draws indices from a fixed discrete distribution.
type Sampler struct {
	prob  []float64 // alias-method acceptance probabilities
	alias []int
	rng   *rand.Rand
}

// NewSampler builds a seeded sampler over probs (non-negative; any
// positive total is normalized away, so unnormalized |ψ|² vectors are
// accepted directly).
func NewSampler(probs []float64, seed int64) (*Sampler, error) {
	n := len(probs)
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty distribution")
	}
	var total float64
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("sampling: probability %v at index %d", p, i)
		}
		total += p
	}
	if total <= 0 {
		return nil, fmt.Errorf("sampling: zero total probability")
	}

	// Walker alias construction: scale to mean 1, split into small
	// (< 1) and large (≥ 1) buckets, pair them off.
	scaled := make([]float64, n)
	for i, p := range probs {
		scaled[i] = p * float64(n) / total
	}
	s := &Sampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
		rng:   rand.New(rand.NewSource(seed)),
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			large = large[:len(large)-1]
			small = append(small, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s, nil
}

// Sample draws one index.
func (s *Sampler) Sample() uint64 {
	i := s.rng.Intn(len(s.prob))
	if s.rng.Float64() < s.prob[i] {
		return uint64(i)
	}
	return uint64(s.alias[i])
}

// SampleN draws k indices.
func (s *Sampler) SampleN(k int) []uint64 {
	out := make([]uint64, k)
	for i := range out {
		out[i] = s.Sample()
	}
	return out
}

// Counts tallies samples into a histogram.
func Counts(samples []uint64) map[uint64]int {
	h := make(map[uint64]int)
	for _, x := range samples {
		h[x]++
	}
	return h
}

// EstimateExpectation returns the sample mean and standard error of
// cost over the samples — the finite-shot estimate of ⟨ψ|Ĉ|ψ⟩ a
// hardware run would produce.
func EstimateExpectation(samples []uint64, cost func(uint64) float64) (mean, stderr float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	var sum, sumSq float64
	for _, x := range samples {
		c := cost(x)
		sum += c
		sumSq += c * c
	}
	mean = sum / float64(n)
	if n > 1 {
		variance := (sumSq - sum*sum/float64(n)) / float64(n-1)
		if variance > 0 {
			stderr = math.Sqrt(variance / float64(n))
		}
	}
	return mean, stderr
}

// Best returns the lowest-cost sample and its cost.
func Best(samples []uint64, cost func(uint64) float64) (argmin uint64, min float64) {
	if len(samples) == 0 {
		return 0, math.Inf(1)
	}
	argmin, min = samples[0], cost(samples[0])
	for _, x := range samples[1:] {
		if c := cost(x); c < min {
			argmin, min = x, c
		}
	}
	return argmin, min
}

// SamplesToSolution returns the expected number of independent shots
// needed to observe an optimal solution at least once with the given
// confidence, from the state's ground-state overlap p:
//
//	N = ln(1 − confidence) / ln(1 − p).
//
// This is the shots side of the time-to-solution metric in the LABS
// scaling analysis (Ref. [6]) and the sampling-frequency-threshold
// question of Ref. [5]. Overlap 0 returns +Inf; overlap 1 returns 1.
func SamplesToSolution(overlap, confidence float64) float64 {
	if overlap <= 0 {
		return math.Inf(1)
	}
	if overlap >= 1 {
		return 1
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.99
	}
	return math.Log(1-confidence) / math.Log(1-overlap)
}
