package sampling

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil, 1); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := NewSampler([]float64{0, 0}, 1); err == nil {
		t.Error("zero-total distribution accepted")
	}
	if _, err := NewSampler([]float64{0.5, -0.1}, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewSampler([]float64{0.5, math.NaN()}, 1); err == nil {
		t.Error("NaN probability accepted")
	}
}

func TestPointMass(t *testing.T) {
	s, err := NewSampler([]float64{0, 0, 1, 0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := s.Sample(); got != 2 {
			t.Fatalf("point mass sampled %d", got)
		}
	}
}

func TestFrequenciesMatchDistribution(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	s, err := NewSampler(probs, 42)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 200000
	counts := Counts(s.SampleN(shots))
	for i, want := range probs {
		got := float64(counts[uint64(i)]) / shots
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: frequency %.4f, want %.2f", i, got, want)
		}
	}
}

func TestUnnormalizedInputAccepted(t *testing.T) {
	// |ψ|² vectors may be slightly unnormalized; the sampler rescales.
	s, err := NewSampler([]float64{2, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(s.SampleN(100000))
	frac := float64(counts[1]) / 100000
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("frequency of index 1 = %.4f, want 0.75", frac)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	probs := []float64{0.25, 0.25, 0.5}
	a, _ := NewSampler(probs, 9)
	b, _ := NewSampler(probs, 9)
	for i := 0; i < 50; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestEstimateExpectation(t *testing.T) {
	// Exact over a deterministic sample set.
	samples := []uint64{0, 0, 1, 1}
	cost := func(x uint64) float64 { return float64(x) * 10 }
	mean, stderr := EstimateExpectation(samples, cost)
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	// variance = (0-5)²·4/3... sample variance of {0,0,10,10} = 100/3,
	// stderr = sqrt(100/3/4) = 2.886..
	if math.Abs(stderr-math.Sqrt(100.0/3/4)) > 1e-12 {
		t.Errorf("stderr = %v", stderr)
	}
	if m, s := EstimateExpectation(nil, cost); m != 0 || s != 0 {
		t.Error("empty samples must return zeros")
	}
}

func TestEstimateConvergesToTrueExpectation(t *testing.T) {
	probs := []float64{0.5, 0, 0, 0.5} // cost 0 and 3 equally likely
	s, _ := NewSampler(probs, 11)
	cost := func(x uint64) float64 { return float64(x) }
	mean, stderr := EstimateExpectation(s.SampleN(50000), cost)
	if math.Abs(mean-1.5) > 5*stderr+0.05 {
		t.Errorf("mean %v ± %v far from 1.5", mean, stderr)
	}
}

func TestBest(t *testing.T) {
	cost := func(x uint64) float64 { return math.Abs(float64(x) - 3) }
	arg, min := Best([]uint64{7, 1, 3, 5}, cost)
	if arg != 3 || min != 0 {
		t.Errorf("Best = (%d, %v)", arg, min)
	}
	if _, min := Best(nil, cost); !math.IsInf(min, 1) {
		t.Error("empty Best must be +Inf")
	}
}

func TestSamplesToSolution(t *testing.T) {
	// p = 0.5, confidence 0.99: N = ln(0.01)/ln(0.5) ≈ 6.64.
	got, err := SamplesToSolution(0.5, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Log(0.01)/math.Log(0.5)) > 1e-12 {
		t.Errorf("N = %v", got)
	}
	if v, err := SamplesToSolution(0, 0.99); err != nil || !math.IsInf(v, 1) {
		t.Errorf("overlap 0 must need infinite samples (got %v, %v)", v, err)
	}
	if v, err := SamplesToSolution(1, 0.99); err != nil || v != 1 {
		t.Errorf("overlap 1 must need one sample (got %v, %v)", v, err)
	}
	// Monotone: higher overlap, fewer samples.
	lo, err1 := SamplesToSolution(0.2, 0.9)
	hi, err2 := SamplesToSolution(0.4, 0.9)
	if err1 != nil || err2 != nil || lo <= hi {
		t.Error("SamplesToSolution not decreasing in overlap")
	}
}

func TestSamplesToSolutionRejectsBadInputs(t *testing.T) {
	// NaN overlap must not slip through the ≤0 / ≥1 guards.
	if _, err := SamplesToSolution(math.NaN(), 0.99); err == nil {
		t.Error("NaN overlap accepted")
	}
	// Out-of-range confidence errors instead of defaulting to 0.99.
	for _, conf := range []float64{-1, 0, 1, 2, math.NaN()} {
		if _, err := SamplesToSolution(0.3, conf); err == nil {
			t.Errorf("confidence %v accepted", conf)
		}
	}
}

func TestEstimateExpectationLargeOffset(t *testing.T) {
	// Regression: with a 1e8 constant offset the old sumSq − sum²/n
	// form lost all significant digits of the variance (stderr came
	// back 0 or garbage); Welford's update keeps the offset-free value.
	const offset = 1e8
	samples := make([]uint64, 0, 10000)
	for i := 0; i < 5000; i++ {
		samples = append(samples, 0, 1)
	}
	base := func(x uint64) float64 { return float64(x) * 10 }
	shifted := func(x uint64) float64 { return base(x) + offset }
	meanB, stderrB := EstimateExpectation(samples, base)
	meanS, stderrS := EstimateExpectation(samples, shifted)
	if math.Abs(meanS-offset-meanB) > 1e-6 {
		t.Errorf("shifted mean %v, want %v", meanS, meanB+offset)
	}
	if stderrB <= 0 {
		t.Fatalf("base stderr = %v, want > 0", stderrB)
	}
	if math.Abs(stderrS-stderrB)/stderrB > 1e-6 {
		t.Errorf("stderr not offset-invariant: %v vs %v", stderrS, stderrB)
	}
}

// The concurrency contract under -race: one Sampler per goroutine via
// Split (shared read-only alias tables, private RNG streams) is safe,
// and every stream still draws the parent's distribution.
func TestSplitPerGoroutineSamplers(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	parent, err := NewSampler(probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const shotsEach = 25000
	counts := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := parent.Split(int64(100 + w))
			c := make([]int, len(probs))
			for i := 0; i < shotsEach; i++ {
				c[s.Sample()]++
			}
			counts[w] = c
		}(w)
	}
	// The parent keeps its own stream while the splits draw.
	for i := 0; i < shotsEach; i++ {
		_ = parent.Sample()
	}
	wg.Wait()
	total := make([]int, len(probs))
	for _, c := range counts {
		for i, v := range c {
			total[i] += v
		}
	}
	for i, want := range probs {
		got := float64(total[i]) / float64(workers*shotsEach)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: merged frequency %.4f, want %.2f", i, got, want)
		}
	}
	// Two different split seeds give different streams; the same seed
	// reproduces the same stream.
	a, b := parent.Split(1), parent.Split(1)
	for i := 0; i < 50; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same split seed diverged")
		}
	}
}

// Property (testing/quick): samples always index into the support.
func TestQuickSamplesInRange(t *testing.T) {
	f := func(seed int64, raw [6]uint8) bool {
		probs := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			probs[i] = float64(r)
			total += probs[i]
		}
		if total == 0 {
			return true
		}
		s, err := NewSampler(probs, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			x := s.Sample()
			if x >= uint64(len(probs)) || probs[x] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
