package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil, 1); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := NewSampler([]float64{0, 0}, 1); err == nil {
		t.Error("zero-total distribution accepted")
	}
	if _, err := NewSampler([]float64{0.5, -0.1}, 1); err == nil {
		t.Error("negative probability accepted")
	}
	if _, err := NewSampler([]float64{0.5, math.NaN()}, 1); err == nil {
		t.Error("NaN probability accepted")
	}
}

func TestPointMass(t *testing.T) {
	s, err := NewSampler([]float64{0, 0, 1, 0}, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := s.Sample(); got != 2 {
			t.Fatalf("point mass sampled %d", got)
		}
	}
}

func TestFrequenciesMatchDistribution(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	s, err := NewSampler(probs, 42)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 200000
	counts := Counts(s.SampleN(shots))
	for i, want := range probs {
		got := float64(counts[uint64(i)]) / shots
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d: frequency %.4f, want %.2f", i, got, want)
		}
	}
}

func TestUnnormalizedInputAccepted(t *testing.T) {
	// |ψ|² vectors may be slightly unnormalized; the sampler rescales.
	s, err := NewSampler([]float64{2, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(s.SampleN(100000))
	frac := float64(counts[1]) / 100000
	if math.Abs(frac-0.75) > 0.01 {
		t.Errorf("frequency of index 1 = %.4f, want 0.75", frac)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	probs := []float64{0.25, 0.25, 0.5}
	a, _ := NewSampler(probs, 9)
	b, _ := NewSampler(probs, 9)
	for i := 0; i < 50; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestEstimateExpectation(t *testing.T) {
	// Exact over a deterministic sample set.
	samples := []uint64{0, 0, 1, 1}
	cost := func(x uint64) float64 { return float64(x) * 10 }
	mean, stderr := EstimateExpectation(samples, cost)
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	// variance = (0-5)²·4/3... sample variance of {0,0,10,10} = 100/3,
	// stderr = sqrt(100/3/4) = 2.886..
	if math.Abs(stderr-math.Sqrt(100.0/3/4)) > 1e-12 {
		t.Errorf("stderr = %v", stderr)
	}
	if m, s := EstimateExpectation(nil, cost); m != 0 || s != 0 {
		t.Error("empty samples must return zeros")
	}
}

func TestEstimateConvergesToTrueExpectation(t *testing.T) {
	probs := []float64{0.5, 0, 0, 0.5} // cost 0 and 3 equally likely
	s, _ := NewSampler(probs, 11)
	cost := func(x uint64) float64 { return float64(x) }
	mean, stderr := EstimateExpectation(s.SampleN(50000), cost)
	if math.Abs(mean-1.5) > 5*stderr+0.05 {
		t.Errorf("mean %v ± %v far from 1.5", mean, stderr)
	}
}

func TestBest(t *testing.T) {
	cost := func(x uint64) float64 { return math.Abs(float64(x) - 3) }
	arg, min := Best([]uint64{7, 1, 3, 5}, cost)
	if arg != 3 || min != 0 {
		t.Errorf("Best = (%d, %v)", arg, min)
	}
	if _, min := Best(nil, cost); !math.IsInf(min, 1) {
		t.Error("empty Best must be +Inf")
	}
}

func TestSamplesToSolution(t *testing.T) {
	// p = 0.5, confidence 0.99: N = ln(0.01)/ln(0.5) ≈ 6.64.
	if got := SamplesToSolution(0.5, 0.99); math.Abs(got-math.Log(0.01)/math.Log(0.5)) > 1e-12 {
		t.Errorf("N = %v", got)
	}
	if !math.IsInf(SamplesToSolution(0, 0.99), 1) {
		t.Error("overlap 0 must need infinite samples")
	}
	if SamplesToSolution(1, 0.99) != 1 {
		t.Error("overlap 1 must need one sample")
	}
	// Invalid confidence falls back to 0.99.
	if a, b := SamplesToSolution(0.3, -1), SamplesToSolution(0.3, 0.99); a != b {
		t.Error("confidence fallback broken")
	}
	// Monotone: higher overlap, fewer samples.
	if SamplesToSolution(0.2, 0.9) <= SamplesToSolution(0.4, 0.9) {
		t.Error("SamplesToSolution not decreasing in overlap")
	}
}

// Property (testing/quick): samples always index into the support.
func TestQuickSamplesInRange(t *testing.T) {
	f := func(seed int64, raw [6]uint8) bool {
		probs := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			probs[i] = float64(r)
			total += probs[i]
		}
		if total == 0 {
			return true
		}
		s, err := NewSampler(probs, seed)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			x := s.Sample()
			if x >= uint64(len(probs)) || probs[x] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
