// Package benchutil is the measurement harness shared by the
// figure-regeneration benchmarks (cmd/qaoabench and bench_test.go):
// repeated timing with medians, parameter-sweep series in the long
// format the paper's plots use, and aligned/CSV table writers.
package benchutil

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// TimeRepeat runs fn reps times (reps ≥ 1) and returns the median and
// minimum wall time. The paper's Fig. 2 reports means over 5 runs;
// medians are sturdier on a shared host and we report both in
// EXPERIMENTS.md where it matters.
func TimeRepeat(reps int, fn func()) (median, min time.Duration) {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		fn()
		times[i] = time.Since(start)
	}
	return Median(times), Min(times)
}

// Median returns the median duration (lower middle for even counts).
func Median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// Min returns the smallest duration.
func Min(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	m := ds[0]
	for _, d := range ds[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// Seconds renders a duration as seconds with three significant
// figures, matching the log-scale second axes of the paper's figures.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3g", d.Seconds())
}

// Table is a simple column-aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(headers ...string) *Table { return &Table{Headers: headers} }

// Add appends a row; short rows are padded.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "\t")
	t.Add(parts...)
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// FprintCSV writes the table as CSV (no quoting; benchmark cells never
// contain commas).
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Point is one measurement in a sweep.
type Point struct {
	X float64
	Y float64
	// Note annotates special points ("capped", "modeled", …).
	Note string
}

// Series is one labeled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddNote appends an annotated point.
func (s *Series) AddNote(x, y float64, note string) {
	s.Points = append(s.Points, Point{X: x, Y: y, Note: note})
}

// FitExpRate fits y ≈ a·b^x by least squares on ln y and returns the
// base b together with the correlation of the log-linear fit. Points
// with y ≤ 0 are skipped. This is the scaling-rate extraction used by
// the time-to-solution analysis (growth rates like "2^{0.34n}" in the
// LABS scaling study).
func FitExpRate(xs, ys []float64) (base float64, r2 float64) {
	var sx, sy, sxx, sxy, syy, n float64
	for i := range xs {
		if i >= len(ys) || ys[i] <= 0 {
			continue
		}
		x, y := xs[i], math.Log(ys[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
		n++
	}
	if n < 2 {
		return 0, 0
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope := (n*sxy - sx*sy) / den
	// r² of the log-linear regression.
	varY := n*syy - sy*sy
	if varY > 0 {
		r := (n*sxy - sx*sy) / math.Sqrt(den*varY)
		r2 = r * r
	}
	return math.Exp(slope), r2
}

// FprintSeries writes curves in long format (series, x, y, note): the
// rows a plotting script would consume to regenerate the figure.
func FprintSeries(w io.Writer, xLabel, yLabel string, series []Series) {
	t := NewTable("series", xLabel, yLabel, "note")
	for _, s := range series {
		for _, p := range s.Points {
			t.Add(s.Name, fmt.Sprintf("%g", p.X), fmt.Sprintf("%.4g", p.Y), p.Note)
		}
	}
	t.Fprint(w)
}
