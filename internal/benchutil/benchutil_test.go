package benchutil

import (
	"strings"
	"testing"
	"time"
)

func TestMedianAndMin(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	if Median(ds) != 3 {
		t.Errorf("Median = %v", Median(ds))
	}
	if Min(ds) != 1 {
		t.Errorf("Min = %v", Min(ds))
	}
	even := []time.Duration{4, 1, 3, 2}
	if Median(even) != 2 {
		t.Errorf("even Median = %v", Median(even))
	}
	if Median(nil) != 0 || Min(nil) != 0 {
		t.Error("empty slices must return 0")
	}
}

func TestTimeRepeat(t *testing.T) {
	calls := 0
	med, min := TimeRepeat(5, func() { calls++ })
	if calls != 5 {
		t.Errorf("fn called %d times", calls)
	}
	if min > med {
		t.Errorf("min %v > median %v", min, med)
	}
	TimeRepeat(0, func() { calls++ })
	if calls != 6 {
		t.Error("reps<1 must still run once")
	}
}

func TestSeconds(t *testing.T) {
	if s := Seconds(1500 * time.Millisecond); s != "1.5" {
		t.Errorf("Seconds = %q", s)
	}
	if s := Seconds(123 * time.Microsecond); s != "0.000123" {
		t.Errorf("Seconds = %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("name", "value")
	tab.Add("x", "1")
	tab.Add("longer-name", "22")
	tab.Addf("fmt\t%d", 7)
	var b strings.Builder
	tab.Fprint(&b)
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header line %q", lines[0])
	}
	if !strings.Contains(lines[4], "fmt") || !strings.Contains(lines[4], "7") {
		t.Errorf("Addf row %q", lines[4])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.Add("1", "2")
	var b strings.Builder
	tab.FprintCSV(&b)
	if b.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", b.String())
	}
}

func TestFitExpRate(t *testing.T) {
	// y = 3·1.5^x fits exactly.
	xs := []float64{8, 10, 12, 14, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * pow(1.5, x)
	}
	base, r2 := FitExpRate(xs, ys)
	if base < 1.499 || base > 1.501 {
		t.Errorf("base = %v, want 1.5", base)
	}
	if r2 < 0.9999 {
		t.Errorf("r² = %v", r2)
	}
	// Degenerate inputs.
	if b, _ := FitExpRate([]float64{1}, []float64{2}); b != 0 {
		t.Errorf("single point fit = %v", b)
	}
	if b, _ := FitExpRate([]float64{1, 2}, []float64{-1, -2}); b != 0 {
		t.Errorf("non-positive ys fit = %v", b)
	}
}

func pow(b, x float64) float64 {
	r := 1.0
	for i := 0; i < int(x); i++ {
		r *= b
	}
	return r
}

func TestSeries(t *testing.T) {
	s := Series{Name: "qokit"}
	s.Add(6, 0.001)
	s.AddNote(30, 12.5, "capped")
	var b strings.Builder
	FprintSeries(&b, "n", "seconds", []Series{s})
	out := b.String()
	for _, want := range []string{"series", "qokit", "capped", "12.5", "seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}
