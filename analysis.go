package qokit

import (
	"qokit/internal/classical"
	"qokit/internal/graphs"
	"qokit/internal/params"
	"qokit/internal/sampling"
)

// Sampler draws measurement outcomes (bitstring indices) from a
// probability vector in O(1) per shot (Walker's alias method) — the
// bridge between simulated states and the shot-based quantities a
// hardware QAOA run produces.
type Sampler = sampling.Sampler

// NewSampler builds a seeded sampler over probs (unnormalized |ψ|²
// vectors are accepted).
func NewSampler(probs []float64, seed int64) (*Sampler, error) {
	return sampling.NewSampler(probs, seed)
}

// SampleResult draws k measurement outcomes from an evolved QAOA state.
func SampleResult(r *Result, k int, seed int64) ([]uint64, error) {
	s, err := sampling.NewSampler(r.Probabilities(nil, true), seed)
	if err != nil {
		return nil, err
	}
	return s.SampleN(k), nil
}

// EstimateExpectation returns the finite-shot estimate (mean ± stderr)
// of a cost function over samples.
func EstimateExpectation(samples []uint64, cost func(uint64) float64) (mean, stderr float64) {
	return sampling.EstimateExpectation(samples, cost)
}

// BestSample returns the lowest-cost sampled bitstring.
func BestSample(samples []uint64, cost func(uint64) float64) (argmin uint64, min float64) {
	return sampling.Best(samples, cost)
}

// SamplesToSolution converts a ground-state overlap into the expected
// shot count to observe an optimal solution with the given confidence
// — the quantum side of the time-to-solution metric in the LABS
// scaling analysis the paper enables (Refs. [5], [6]). Overlap ≤ 0
// returns +Inf and overlap ≥ 1 returns 1 (legitimate limits, reached
// by rounding); a NaN overlap or a confidence outside (0, 1) is an
// error — no silent defaulting.
func SamplesToSolution(overlap, confidence float64) (float64, error) {
	return sampling.SamplesToSolution(overlap, confidence)
}

// Walker is a classical local-search state with incremental single-
// flip energy deltas; LABS and MaxCut implementations are provided.
type Walker = classical.Walker

// NewLABSWalker starts a LABS local search at assignment x (O(n)
// flips via cached autocorrelations).
func NewLABSWalker(n int, x uint64) Walker { return classical.NewLABSWalker(n, x) }

// NewMaxCutWalker starts a MaxCut local search at assignment x.
func NewMaxCutWalker(g Graph, x uint64) Walker { return classical.NewMaxCutWalker(g, x) }

// SAOptions configures SimulatedAnnealing.
type SAOptions = classical.SAOptions

// SAResult reports a simulated-annealing run.
type SAResult = classical.SAResult

// SimulatedAnnealing minimizes a Walker's energy under a geometric
// cooling schedule — the classical heuristic baseline of the scaling
// analysis (`qaoabench scaling`).
func SimulatedAnnealing(w Walker, opt SAOptions) SAResult {
	return classical.SimulatedAnnealing(w, opt)
}

// TabuOptions configures TabuSearch.
type TabuOptions = classical.TabuOptions

// TabuResult reports a tabu-search run.
type TabuResult = classical.TabuResult

// TabuSearch minimizes a Walker's energy with best-improvement moves
// under a recency tabu list.
func TabuSearch(w Walker, opt TabuOptions) TabuResult {
	return classical.TabuSearch(w, opt)
}

// StepsToOptimum runs restarted simulated annealing until the known
// optimum is reached and returns the flips consumed — the classical
// time-to-solution.
func StepsToOptimum(mk func(x uint64) Walker, n int, optimum float64, stepsPerRun int, seed int64, maxRestarts int) (int, error) {
	return classical.StepsToOptimum(mk, n, optimum, stepsPerRun, seed, maxRestarts)
}

// Interp extends optimized depth-p QAOA parameters to p+1 by linear
// interpolation (the INTERP heuristic), preserving the annealing-like
// ramp shape.
func Interp(theta []float64) []float64 { return params.Interp(theta) }

// InterpAngles applies Interp to both angle vectors.
func InterpAngles(gamma, beta []float64) (g, b []float64) {
	return params.InterpAngles(gamma, beta)
}

// MaxCutP1Expectation evaluates the exact closed-form p = 1 QAOA
// expected cut for an arbitrary graph — an analytic oracle needing no
// state vector.
func MaxCutP1Expectation(g Graph, gamma, beta float64) float64 {
	return params.MaxCutP1Expectation(g, gamma, beta)
}

// P1OptimalTriangleFree returns the analytically optimal p = 1 MaxCut
// angles for triangle-free d-regular graphs and the expected per-edge
// cut gain.
func P1OptimalTriangleFree(d int) (gamma, beta, cutGainPerEdge float64, err error) {
	return params.P1OptimalTriangleFree(d)
}

// Petersen returns the Petersen graph (3-regular, triangle-free) —
// the canonical instance for the p = 1 analytics.
func Petersen() Graph { return graphs.Petersen() }
