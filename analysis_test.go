package qokit

import (
	"math"
	"testing"
)

func TestSampleResultAndEstimators(t *testing.T) {
	n := 8
	sim, err := NewSimulator(n, LABSTerms(n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gamma, beta := TQAInit(3, 0.7)
	res, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := SampleResult(res, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 20000 {
		t.Fatalf("got %d samples", len(samples))
	}
	cost := func(x uint64) float64 { return float64(LABSEnergy(x, n)) }
	mean, stderr := EstimateExpectation(samples, cost)
	exact := res.Expectation()
	if math.Abs(mean-exact) > 6*stderr+0.05 {
		t.Errorf("sampled mean %v ± %v vs exact %v", mean, stderr, exact)
	}
	arg, min := BestSample(samples, cost)
	if cost(arg) != min {
		t.Error("BestSample inconsistent")
	}
	if min < sim.MinCost() {
		t.Errorf("sampled best %v below true optimum %v", min, sim.MinCost())
	}
}

func TestSamplesToSolutionFacade(t *testing.T) {
	v, err := SamplesToSolution(0.5, 0.99)
	if err != nil || v <= 0 || math.IsInf(v, 1) {
		t.Errorf("SamplesToSolution = %v, %v", v, err)
	}
	if _, err := SamplesToSolution(math.NaN(), 0.99); err == nil {
		t.Error("NaN overlap accepted")
	}
	if _, err := SamplesToSolution(0.5, 1.5); err == nil {
		t.Error("out-of-range confidence accepted")
	}
}

func TestClassicalFacade(t *testing.T) {
	n := 10
	optE, _ := LABSOptimalEnergy(n)
	res := SimulatedAnnealing(NewLABSWalker(n, 0), SAOptions{Steps: 50000, Seed: 1})
	if int(res.BestEnergy) != optE {
		t.Errorf("SA best %v, optimum %d", res.BestEnergy, optE)
	}
	tres := TabuSearch(NewLABSWalker(n, 0), TabuOptions{Steps: 5000, Seed: 1})
	if int(tres.BestEnergy) != optE {
		t.Errorf("tabu best %v, optimum %d", tres.BestEnergy, optE)
	}
	g := Petersen()
	w := NewMaxCutWalker(g, 0)
	mres := SimulatedAnnealing(w, SAOptions{Steps: 20000, Seed: 2})
	best, _, err := MaxCutBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	if -mres.BestEnergy != float64(best) {
		t.Errorf("SA cut %v, brute-force %d", -mres.BestEnergy, best)
	}
	steps, err := StepsToOptimum(func(x uint64) Walker { return NewLABSWalker(n, x) },
		n, float64(optE), 30000, 3, 50)
	if err != nil || steps <= 0 {
		t.Errorf("StepsToOptimum = %d, %v", steps, err)
	}
}

func TestParamsFacade(t *testing.T) {
	g := Petersen()
	gamma, beta, gain, err := P1OptimalTriangleFree(3)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(g.NumEdges()) * (0.5 + gain)
	if got := MaxCutP1Expectation(g, gamma, beta); math.Abs(got-want) > 1e-12 {
		t.Errorf("analytic cut %v, want %v", got, want)
	}
	g2, b2 := InterpAngles([]float64{0.3}, []float64{0.5})
	if len(g2) != 2 || len(b2) != 2 {
		t.Fatal("InterpAngles lengths")
	}
	if out := Interp([]float64{1, 3}); len(out) != 3 || out[1] != 2 {
		t.Errorf("Interp midpoint = %v", out)
	}
}

func TestOptimizeParametersInterpLadder(t *testing.T) {
	n := 8
	g, err := RandomRegular(n, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(n, MaxCutTerms(g), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gamma, beta, energy, evals, err := OptimizeParametersInterp(sim, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(gamma) != 3 || len(beta) != 3 {
		t.Fatalf("final depth %d/%d", len(gamma), len(beta))
	}
	if evals < 10 {
		t.Errorf("evals = %d", evals)
	}
	// The ladder must beat the raw p=1 TQA starting point.
	g1, b1 := TQAInit(1, 0.75)
	r1, err := sim.SimulateQAOA(g1, b1)
	if err != nil {
		t.Fatal(err)
	}
	if energy > r1.Expectation()+1e-9 {
		t.Errorf("INTERP ladder energy %v worse than p=1 start %v", energy, r1.Expectation())
	}
	r, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Expectation()-energy) > 1e-9 {
		t.Error("reported ladder energy does not reproduce")
	}
	if _, _, _, _, err := OptimizeParametersInterp(sim, 0, 10); err == nil {
		t.Error("pmax=0 accepted")
	}
}
