package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example end to end at a reduced size: it
// must exit cleanly and print the expected report markers.
func TestRun(t *testing.T) {
	defer func(n, e int) { nQubits, optEvals = n, e }(nQubits, optEvals)
	nQubits, optEvals = 8, 30

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"precomputed diagonal: 256 entries",
		"⟨γβ|C|γβ⟩ =",
		"ground-state overlap =",
		"optimizer evaluations: energy",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
