// Quickstart: evaluating the QAOA objective for weighted MaxCut on an
// all-to-all graph — the Go version of the paper's Listing 1.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits  = 16
	optEvals = 150
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Choose a simulator class by name, as in
	// qokit.fur.choose_simulator(name='auto').
	simclass, err := qokit.ChooseSimulator("auto")
	if err != nil {
		return err
	}

	n := nQubits
	// Terms for all-to-all MaxCut with weight 0.3: one quadratic term
	// (0.3, {i, j}) per pair, exactly Listing 1's list comprehension.
	terms := qokit.AllToAllMaxCutTerms(n, 0.3)

	// Constructing the simulator precomputes the 2^n cost diagonal
	// (the paper's central optimization); it is cached and reused by
	// every phase operator and objective evaluation below.
	sim, err := simclass(n, terms)
	if err != nil {
		return err
	}

	// The precomputed cost vector is available for inspection, as in
	// sim.get_cost_diagonal().
	costs := sim.CostDiagonal()
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	fmt.Fprintf(w, "precomputed diagonal: %d entries, spectrum [%.1f, %.1f]\n", len(costs), lo, hi)

	// Evaluate the QAOA objective at p=3 with standard linear-ramp
	// initial parameters.
	gamma, beta := qokit.TQAInit(3, 0.75)
	result, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	energy := result.Expectation()
	fmt.Fprintf(w, "⟨γβ|C|γβ⟩ = %.6f at the TQA starting point\n", energy)
	fmt.Fprintf(w, "ground-state overlap = %.4g\n", result.Overlap())

	// The same simulator instance evaluates as many parameter sets as
	// the optimizer asks for, each at per-layer cost — that reuse is
	// what the precomputation buys.
	gamma2, beta2, tuned, evals, err := qokit.OptimizeParameters(sim, 3, qokit.NMOptions{MaxEvals: optEvals})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "after %d optimizer evaluations: energy %.6f (γ=%.3v, β=%.3v)\n", evals, tuned, gamma2, beta2)
	return nil
}
