// Light-cone MaxCut at sizes no statevector can touch: for bounded-
// degree graphs at small depth p, each edge's cut expectation depends
// only on its radius-p neighborhood, so the energy decomposes into
// thousands of tiny independent simulations — and isomorphic
// neighborhoods (ubiquitous on random-regular graphs) collapse to a
// handful of unique cones. The example first checks the reduction is
// exact against the full statevector at an overlapping size, then
// scales the same workload through 5000 vertices and optimizes a
// 1000-vertex instance end to end.
//
//	go run ./examples/lightcone
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	"qokit"
)

var (
	checkN     = 16
	graphSizes = []int{200, 1000, 5000}
	optN       = 1000
	depth      = 2
	evalBudget = 60
	degree     = 3
	graphSeed  = int64(7)
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	ctx := context.Background()
	gamma, beta := qokit.TQAInit(depth, 0.75)
	x := append(append([]float64{}, gamma...), beta...)

	// Exactness first: at a size the statevector still reaches, the
	// cone-decomposed energy must match the full 2^n simulation. The
	// MaxCut instance is registered once in a problem registry, and both
	// backends are served from the same key — the statevector service
	// acquires the cached diagonal, the light-cone service recovers the
	// edge list from the registered polynomial and never touches a 2^n
	// buffer.
	small, err := qokit.RandomRegular(checkN, degree, graphSeed)
	if err != nil {
		return err
	}
	reg := qokit.NewProblemRegistry(qokit.RegistryOptions{})
	key, err := reg.Register(qokit.ProblemSpec{N: checkN, Terms: qokit.MaxCutTerms(small)})
	if err != nil {
		return err
	}
	svcFull, err := qokit.NewRegistryService(reg, key, qokit.RegistryServiceOptions{})
	if err != nil {
		return err
	}
	defer svcFull.Close()
	svcCone, err := qokit.NewRegistryService(reg, key, qokit.RegistryServiceOptions{
		LightCone: &qokit.LightConeOptions{Radius: depth},
	})
	if err != nil {
		return err
	}
	defer svcCone.Close()
	var fullErr, coneErr error
	fullE := svcFull.Objective(ctx, &fullErr)(x)
	coneE := svcCone.Objective(ctx, &coneErr)(x)
	if fullErr != nil {
		return fullErr
	}
	if coneErr != nil {
		return coneErr
	}
	if d := math.Abs(coneE - fullE); d > 1e-10*math.Max(1, math.Abs(coneE)) {
		return fmt.Errorf("light-cone energy %v disagrees with statevector %v (|Δ| = %g)", coneE, fullE, d)
	}
	rst := reg.Stats()
	fmt.Fprintf(w, "exactness check, n=%d p=%d: light-cone %.10f vs statevector %.10f ✓\n",
		checkN, depth, coneE, fullE)
	fmt.Fprintf(w, "(two backends served from one registered problem: %d diagonal precompute —\n", rst.Precomputes)
	fmt.Fprintf(w, " the light-cone service needs none)\n\n")

	// Scaling: the per-evaluation cost is set by the unique cone classes
	// (a handful, regardless of size), so wall-clock grows only with the
	// O(|E|) expectation sum — not with 2^n.
	fmt.Fprintf(w, "%8s  %7s  %6s  %8s  %9s  %11s\n",
		"vertices", "edges", "cones", "hit-rate", "energy", "2p-gradient")
	for _, nv := range graphSizes {
		g, err := qokit.RandomRegular(nv, degree, graphSeed)
		if err != nil {
			return err
		}
		eng, err := qokit.NewLightConeSimulator(g, qokit.LightConeOptions{Radius: depth})
		if err != nil {
			return err
		}
		grad := make([]float64, len(x))
		if _, err := eng.Energy(ctx, x); err != nil { // warm the cone buffers
			return err
		}
		start := time.Now()
		if _, err := eng.Energy(ctx, x); err != nil {
			return err
		}
		tE := time.Since(start)
		start = time.Now()
		if _, err := eng.EnergyGrad(ctx, x, grad); err != nil {
			return err
		}
		tG := time.Since(start)
		st := eng.Stats()
		fmt.Fprintf(w, "%8d  %7d  %6d  %8.3f  %9s  %11s\n",
			nv, st.Edges, st.UniqueCones, st.HitRate, tE.Round(10*time.Microsecond), tG.Round(10*time.Microsecond))
	}

	// Optimization at scale: the engine serves the standard evaluator
	// contract, so the evaluation service and Nelder–Mead drive it
	// exactly as they drive the statevector path. (The registry's
	// bitmask polynomial representation stops at 64 qubits, so graphs
	// this size construct the engine directly from the graph.)
	g, err := qokit.RandomRegular(optN, degree, graphSeed)
	if err != nil {
		return err
	}
	eng, err := qokit.NewLightConeSimulator(g, qokit.LightConeOptions{Radius: depth})
	if err != nil {
		return err
	}
	svc, err := qokit.NewService([]qokit.Evaluator{eng}, qokit.ServiceOptions{})
	if err != nil {
		return err
	}
	defer svc.Close()
	var simErr error
	start := time.Now()
	opt := qokit.NelderMead(svc.Objective(ctx, &simErr), x, qokit.NMOptions{MaxEvals: evalBudget})
	if simErr != nil {
		return simErr
	}
	st := eng.Stats()
	// f(x) = Σ (w/2)⟨ZZ⟩ − W/2, so the expected cut is −f.
	fmt.Fprintf(w, "\noptimized %d-vertex %d-regular MaxCut at p=%d: expected cut %.1f of %d edges (ratio %.4f)\n",
		optN, degree, depth, -opt.F, st.Edges, -opt.F/float64(st.Edges))
	fmt.Fprintf(w, "%d evaluations in %s — the statevector path would need a 2^%d-entry state\n",
		opt.Evals, time.Since(start).Round(time.Millisecond), optN)
	return nil
}
