package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit, the
// exactness check passing, and the expected report markers.
func TestRun(t *testing.T) {
	defer func(sizes []int, n, opt, evals int) {
		graphSizes, checkN, optN, evalBudget = sizes, n, opt, evals
	}(graphSizes, checkN, optN, evalBudget)
	graphSizes, checkN, optN, evalBudget = []int{60, 120}, 12, 120, 20

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"exactness check, n=12 p=2",
		"hit-rate",
		"optimized 120-vertex 3-regular MaxCut at p=2",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
