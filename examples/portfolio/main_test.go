package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit plus
// the expected report markers, including the feasibility invariant
// (all probability mass on weight-k selections).
func TestRun(t *testing.T) {
	defer func(n, b, d, e int) { nAssets, budget, depth, optEvals = n, b, d, e }(nAssets, budget, depth, optEvals)
	nAssets, budget, depth, optEvals = 8, 3, 3, 60

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"portfolio: 8 assets, select 3",
		"feasible optimum:",
		"probability mass on feasible selections: 1.000000",
		"#1 portfolio",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
