// Portfolio optimization with a Hamming-weight-preserving xy mixer —
// the constrained-optimization workflow of the paper's §IV (QOKit's
// choose_simulator_xyring): select exactly `budget` of n assets
// minimizing risk − return, with the budget constraint enforced by the
// mixer and a Dicke initial state instead of a penalty term.
//
//	go run ./examples/portfolio
package main

import (
	"fmt"
	"io"
	"log"
	"math/bits"
	"os"

	"qokit"
)

var (
	nAssets  = 12
	budget   = 5
	depth    = 6
	optEvals = 400
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nAssets
	data := qokit.SyntheticPortfolio(n, budget, 0.5, 42)
	terms := data.PortfolioTerms()
	fmt.Fprintf(w, "portfolio: %d assets, select %d, risk aversion q=%.2f (%d cost terms)\n",
		n, budget, data.Q, len(terms))

	// The xy-ring mixer conserves Hamming weight, so starting from the
	// Dicke state |D^n_k⟩ the dynamics never leaves the feasible
	// subspace of exactly-k selections.
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{
		Mixer:         qokit.MixerXYRing,
		HammingWeight: budget,
	})
	if err != nil {
		return err
	}

	// The simulator's reported optimum is the best *feasible* cost
	// (weight-k states only); cross-check against brute force.
	bruteBest, bruteArg, err := data.PortfolioBrute()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "feasible optimum: %.6f (simulator) vs %.6f (brute force), portfolio %0*b\n",
		sim.MinCost(), bruteBest, n, bruteArg)

	p := depth
	gamma, beta, energy, evals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: optEvals})
	if err != nil {
		return err
	}
	res, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nQAOA p=%d after %d evaluations: energy %.6f (optimum %.6f)\n", p, evals, energy, bruteBest)
	fmt.Fprintf(w, "probability of the optimal portfolio: %.4g\n", res.Overlap())

	// Verify the constraint: all probability mass sits on weight-k
	// selections, then report the best few portfolios by probability.
	probs := res.Probabilities(nil, true)
	var feasible float64
	type cand struct {
		x uint64
		p float64
	}
	var top []cand
	for x, q := range probs {
		if bits.OnesCount(uint(x)) == budget {
			feasible += q
		}
		top = append(top, cand{uint64(x), q})
	}
	fmt.Fprintf(w, "probability mass on feasible selections: %.6f (exactly 1 by construction)\n", feasible)

	// Top-3 outcomes.
	for i := 0; i < 3; i++ {
		best := i
		for j := i + 1; j < len(top); j++ {
			if top[j].p > top[best].p {
				best = j
			}
		}
		top[i], top[best] = top[best], top[i]
		fmt.Fprintf(w, "  #%d portfolio %0*b  p=%.4f  objective %.6f\n",
			i+1, n, top[i].x, top[i].p, data.Objective(top[i].x))
	}
	return nil
}
