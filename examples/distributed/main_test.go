package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit plus
// the expected report markers. The example itself verifies every
// distributed configuration against the single-node expectation and
// returns an error on deviation, so a clean exit is the equivalence
// check.
func TestRun(t *testing.T) {
	defer func(n, p int, r []int, ok, ai int) {
		nQubits, depth, rankSet, optRanks, adamIters = n, p, r, ok, ai
	}(nQubits, depth, rankSet, optRanks, adamIters)
	nQubits, depth, rankSet, optRanks, adamIters = 8, 2, []int{1, 2, 4}, 4, 12

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"LABS n=8 p=2 — single-node expectation",
		"bytes/rank",
		"Every configuration reproduces the single-node expectation exactly.",
		"Distributed adjoint gradient (K=4)",
		"§V-B shard representations (K=4)",
		"uint16-quantized diag",
		"float32 state + wire",
		"Distributed Adam (K=4",
		"optimized  E =",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
