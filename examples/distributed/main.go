// Distributed simulation (the paper's §III-C / Listing 3): shard the
// state vector over K simulated ranks, run LABS QAOA with Algorithm 4
// (two all-to-all transposes per mixer), verify the result against the
// single-node simulator, and report the communication profile of both
// all-to-all backends — the comparison behind the paper's Fig. 5.
// Then go one rung further than the paper's forward-only pipeline:
// evaluate the exact adjoint gradient on the sharded state and drive a
// full Adam optimization through the distributed objective, verifying
// both against the single-node gradient engine.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sync"

	"qokit"
)

var (
	nQubits   = 14
	depth     = 3
	rankSet   = []int{1, 2, 4, 8}
	optRanks  = 4
	adamIters = 30
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n, p := nQubits, depth
	terms := qokit.LABSTerms(n)
	gamma, beta := qokit.TQAInit(p, 0.7)

	// Single-node reference.
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{})
	if err != nil {
		return err
	}
	ref, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	refE := ref.Expectation()
	fmt.Fprintf(w, "LABS n=%d p=%d — single-node expectation %.8f\n\n", n, p, refE)

	model := qokit.DefaultNetworkModel()
	fmt.Fprintf(w, "%3s  %10s  %14s  %12s  %10s  %12s\n",
		"K", "algo", "expectation", "bytes/rank", "msgs/rank", "modeled-net")
	for _, algo := range []qokit.AlltoallAlgo{qokit.Pairwise, qokit.Transpose} {
		for _, k := range rankSet {
			res, err := qokit.SimulateQAOADistributed(n, terms, gamma, beta, qokit.DistOptions{
				Ranks: k,
				Algo:  algo,
			})
			if err != nil {
				return err
			}
			if diff := res.Expectation - refE; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("K=%d %v: expectation deviates by %g", k, algo, diff)
			}
			perRank := qokit.CommCounters{
				BytesSent: res.Comm.BytesSent / int64(k),
				Messages:  res.Comm.Messages / int64(k),
				Syncs:     res.Comm.Syncs / int64(k),
			}
			fmt.Fprintf(w, "%3d  %10v  %14.8f  %12d  %10d  %12v\n",
				k, algo, res.Expectation, perRank.BytesSent, perRank.Messages,
				perRank.ModeledTime(model).Round(100))
		}
	}
	fmt.Fprintln(w, "\nEvery configuration reproduces the single-node expectation exactly.")
	fmt.Fprintln(w, "Precompute and phase are communication-free; each mixer costs two")
	fmt.Fprintln(w, "all-to-alls. Pairwise pays ~2(K−1) synchronization rounds per exchange")
	fmt.Fprintln(w, "where the direct transpose pays 2 — the gap the paper measures in Fig. 5.")

	// Distributed adjoint gradient: exact ∂E/∂γ, ∂E/∂β on the sharded
	// state, cross-checked against the single-node adjoint engine.
	singleE, singleGG, singleGB, err := sim.SimulateQAOAGrad(gamma, beta)
	if err != nil {
		return err
	}
	distGrad, err := qokit.SimulateQAOADistributedGrad(n, terms, gamma, beta, qokit.DistOptions{
		Ranks: optRanks, Algo: qokit.Transpose,
	})
	if err != nil {
		return err
	}
	var maxDiff float64
	for l := 0; l < p; l++ {
		maxDiff = math.Max(maxDiff, math.Abs(distGrad.GradGamma[l]-singleGG[l]))
		maxDiff = math.Max(maxDiff, math.Abs(distGrad.GradBeta[l]-singleGB[l]))
	}
	if maxDiff > 1e-9 || math.Abs(distGrad.Energy-singleE) > 1e-9 {
		return fmt.Errorf("distributed gradient deviates from single-node adjoint by %g", maxDiff)
	}
	fmt.Fprintf(w, "\nDistributed adjoint gradient (K=%d): max |Δ| vs single-node %.2g,\n", optRanks, maxDiff)
	fmt.Fprintf(w, "traffic 3× one forward run's mixer collectives (%d bytes/rank).\n",
		distGrad.Comm.BytesSent/int64(optRanks))

	// Gradient-descent optimization on the sharded state: Adam over
	// the distributed FlatObjective, warm-started from TQA.
	eng, err := qokit.NewDistributedGradEngine(n, terms, qokit.DistOptions{
		Ranks: optRanks, Algo: qokit.Transpose,
	})
	if err != nil {
		return err
	}
	var simErr error
	resOpt := qokit.Adam(eng.FlatObjective(context.Background(), &simErr),
		append(append([]float64(nil), gamma...), beta...),
		qokit.AdamOptions{MaxIter: adamIters})
	if simErr != nil {
		return simErr
	}
	fmt.Fprintf(w, "\nDistributed Adam (K=%d, %d iterations, one exact sharded gradient each):\n",
		optRanks, resOpt.Iters)
	fmt.Fprintf(w, "  TQA start  E = %.6f\n", refE)
	fmt.Fprintf(w, "  optimized  E = %.6f  (%d gradient evaluations)\n", resOpt.F, resOpt.Evals)
	if resOpt.F >= refE {
		return fmt.Errorf("distributed optimization failed to improve on the TQA start: %v ≥ %v", resOpt.F, refE)
	}
	fmt.Fprintln(w, "\nThe optimizer never materializes the full state: every evaluation is")
	fmt.Fprintln(w, "one forward + one adjoint reverse pass over the K shards, so parameter")
	fmt.Fprintln(w, "optimization at cluster-only sizes costs ≈4 sharded simulations per step.")

	// §V-B memory representations on the cluster: the same sharded
	// gradient over (a) the uint16-quantized diagonal — each rank codes
	// only its shard against one global (min, scale) agreed by an
	// allreduce pre-pass, exact for LABS's integer costs — and (b)
	// float32 shards with float32 wire formats, halving both state
	// memory and fabric bytes per rank.
	fmt.Fprintf(w, "\n§V-B shard representations (K=%d):\n", optRanks)
	fmt.Fprintf(w, "  %-22s %14s  %12s  %12s\n", "representation", "energy", "bytes/rank", "max |Δgrad|")
	f64Bytes := distGrad.Comm.BytesSent / int64(optRanks)
	for _, cfg := range []struct {
		name string
		opts qokit.DistOptions
	}{
		{"float64 (baseline)", qokit.DistOptions{Ranks: optRanks, Algo: qokit.Transpose}},
		{"uint16-quantized diag", qokit.DistOptions{Ranks: optRanks, Algo: qokit.Transpose, Quantize: true}},
		{"float32 state + wire", qokit.DistOptions{Ranks: optRanks, Algo: qokit.Transpose, Precision: qokit.DistFloat32}},
	} {
		pres, err := qokit.SimulateQAOADistributedGrad(n, terms, gamma, beta, cfg.opts)
		if err != nil {
			return err
		}
		var dGrad float64
		for l := 0; l < p; l++ {
			dGrad = math.Max(dGrad, math.Abs(pres.GradGamma[l]-singleGG[l]))
			dGrad = math.Max(dGrad, math.Abs(pres.GradBeta[l]-singleGB[l]))
		}
		tol := 1e-9
		if cfg.opts.Precision == qokit.DistFloat32 {
			tol = 2e-3 // the single-node SoA32 band
		}
		if dGrad > tol {
			return fmt.Errorf("%s: gradient deviates by %g (tolerance %g)", cfg.name, dGrad, tol)
		}
		fmt.Fprintf(w, "  %-22s %14.8f  %12d  %12.2g\n",
			cfg.name, pres.Energy, pres.Comm.BytesSent/int64(optRanks), dGrad)
		if cfg.opts.Precision == qokit.DistFloat32 && 2*pres.Comm.BytesSent != distGrad.Comm.BytesSent {
			return fmt.Errorf("float32 shards moved %d bytes/rank, want exactly half the float64 path's %d",
				pres.Comm.BytesSent/int64(optRanks), f64Bytes)
		}
	}
	fmt.Fprintln(w, "The quantized diagonal is exact by construction (gradients match float64")
	fmt.Fprintln(w, "to rounding); float32 shards halve bytes/rank and inherit the ~2e-3 band.")

	// Concurrent distributed serving through the problem registry: the
	// problem is registered once, and the elastic service builds
	// rank-group leases on demand — two Adam clients flood the queue, the
	// pool grows from its one-lease floor to a second lease whose
	// diagonal shards come from the registry cache (no second
	// precompute), and the pool decays back after the clients finish.
	reg := qokit.NewProblemRegistry(qokit.RegistryOptions{})
	key, err := reg.Register(qokit.ProblemSpec{N: n, Terms: terms})
	if err != nil {
		return err
	}
	dopts := qokit.DistOptions{Ranks: optRanks, Algo: qokit.Transpose}
	svc, err := qokit.NewRegistryService(reg, key, qokit.RegistryServiceOptions{
		Distributed: &dopts,
		Elastic:     qokit.ElasticOptions{MinWorkers: 1, MaxWorkers: 2},
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	x0 := append(append([]float64(nil), gamma...), beta...)
	results := make([]qokit.AdamResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := append([]float64(nil), x0...)
			start[0] += 0.05 * float64(i) // two distinct warm starts
			results[i] = qokit.Adam(svc.GradObjective(context.Background(), &errs[i]),
				start, qokit.AdamOptions{MaxIter: adamIters / 2})
		}(i)
	}
	wg.Wait()
	fmt.Fprintf(w, "\nConcurrent sharded serving (K=%d, 2 Adam clients on one elastic service):\n", optRanks)
	for i, r := range results {
		if errs[i] != nil {
			return errs[i]
		}
		fmt.Fprintf(w, "  client %d: E = %.6f after %d sharded gradients\n", i, r.F, r.Evals)
	}
	st := reg.Stats()
	fmt.Fprintf(w, "Both clients' evaluations interleaved on leased rank groups through one\n")
	fmt.Fprintf(w, "FIFO queue; the pool served them with %d live lease(s), and the registry\n", svc.LiveWorkers())
	fmt.Fprintf(w, "precomputed the diagonal once for every lease built (%d precompute, %d hits).\n",
		st.Precomputes, st.Hits)

	// Gather-free outputs: CVaR, sampling, and overlap served directly
	// on the shards — on the quantized representation, whose whole point
	// is never holding a node-scale buffer. The two-stage alias draw
	// picks a rank from the allreduced shard masses, then an index
	// within the winning shard; CVaR comes from a k-way threshold
	// reduction over per-rank ascending-cost prefix sums.
	bestX := resOpt.X
	bestGamma, bestBeta := bestX[:p], bestX[p:]
	outs, err := qokit.SimulateQAOADistributedOutputs(n, terms, bestGamma, bestBeta,
		qokit.DistOptions{Ranks: optRanks, Algo: qokit.Transpose, Quantize: true},
		qokit.OutputSpec{CVaRAlphas: []float64{0.5, 0.1}, Shots: 2000, Seed: 7, Variance: true})
	if err != nil {
		return err
	}
	refBest, err := sim.SimulateQAOA(bestGamma, bestBeta)
	if err != nil {
		return err
	}
	refCVaR, err := refBest.CVaR(0.1)
	if err != nil {
		return err
	}
	if d := math.Abs(outs.CVaR[1] - refCVaR); d > 1e-9 {
		return fmt.Errorf("gather-free CVaR(0.1) deviates from single-node by %g", d)
	}
	if d := math.Abs(outs.Overlap - refBest.Overlap()); d > 1e-9 {
		return fmt.Errorf("gather-free overlap deviates from single-node by %g", d)
	}
	// Var(C) cross-checked against the naive ⟨C²⟩−⟨C⟩² moments on the
	// single-node distribution — the distributed value comes from
	// per-rank Welford triples merged by one allreduce.
	refProbs := refBest.Probabilities(nil, true)
	refDiag := sim.CostDiagonal()
	var m1, m2 float64
	for i, q := range refProbs {
		m1 += q * refDiag[i]
		m2 += q * refDiag[i] * refDiag[i]
	}
	refVar := m2 - m1*m1
	if d := math.Abs(outs.Variance - refVar); d > 1e-9*math.Max(1, refVar) {
		return fmt.Errorf("gather-free variance deviates from single-node by %g", d)
	}
	below := 0
	for _, s := range outs.Samples {
		if float64(qokit.LABSEnergy(s, n)) <= outs.CVaR[1] {
			below++
		}
	}
	fmt.Fprintf(w, "\nGather-free outputs at the optimum (K=%d, quantized shards):\n", optRanks)
	fmt.Fprintf(w, "  CVaR(0.5) = %.6f   CVaR(0.1) = %.6f  (single-node match ≤ 1e-9)\n", outs.CVaR[0], outs.CVaR[1])
	fmt.Fprintf(w, "  ground-state overlap %.4g, most probable state %0*b (p=%.4g)\n",
		outs.Overlap, n, outs.MaxProbIndex, outs.MaxProb)
	fmt.Fprintf(w, "  Var(C) = %.6f via second-moment allreduce (single-node match ≤ 1e-9)\n",
		outs.Variance)
	fmt.Fprintf(w, "  %d two-stage shots: %d at energy ≤ CVaR(0.1)\n", len(outs.Samples), below)
	fmt.Fprintln(w, "No rank ever materialized the 2^n state: sampling, CVaR, and overlap ran")
	fmt.Fprintln(w, "on shard-local alias tables and prefix sums plus scalar all-reduces, so")
	fmt.Fprintln(w, "the memory-reduced representations serve as full solver backends.")
	return nil
}
