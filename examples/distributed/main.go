// Distributed simulation (the paper's §III-C / Listing 3): shard the
// state vector over K simulated ranks, run LABS QAOA with Algorithm 4
// (two all-to-all transposes per mixer), verify the result against the
// single-node simulator, and report the communication profile of both
// all-to-all backends — the comparison behind the paper's Fig. 5.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits = 14
	depth   = 3
	rankSet = []int{1, 2, 4, 8}
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n, p := nQubits, depth
	terms := qokit.LABSTerms(n)
	gamma, beta := qokit.TQAInit(p, 0.7)

	// Single-node reference.
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{})
	if err != nil {
		return err
	}
	ref, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	refE := ref.Expectation()
	fmt.Fprintf(w, "LABS n=%d p=%d — single-node expectation %.8f\n\n", n, p, refE)

	model := qokit.DefaultNetworkModel()
	fmt.Fprintf(w, "%3s  %10s  %14s  %12s  %10s  %12s\n",
		"K", "algo", "expectation", "bytes/rank", "msgs/rank", "modeled-net")
	for _, algo := range []qokit.AlltoallAlgo{qokit.Pairwise, qokit.Transpose} {
		for _, k := range rankSet {
			res, err := qokit.SimulateQAOADistributed(n, terms, gamma, beta, qokit.DistOptions{
				Ranks: k,
				Algo:  algo,
			})
			if err != nil {
				return err
			}
			if diff := res.Expectation - refE; diff > 1e-9 || diff < -1e-9 {
				return fmt.Errorf("K=%d %v: expectation deviates by %g", k, algo, diff)
			}
			perRank := qokit.CommCounters{
				BytesSent: res.Comm.BytesSent / int64(k),
				Messages:  res.Comm.Messages / int64(k),
				Syncs:     res.Comm.Syncs / int64(k),
			}
			fmt.Fprintf(w, "%3d  %10v  %14.8f  %12d  %10d  %12v\n",
				k, algo, res.Expectation, perRank.BytesSent, perRank.Messages,
				perRank.ModeledTime(model).Round(100))
		}
	}
	fmt.Fprintln(w, "\nEvery configuration reproduces the single-node expectation exactly.")
	fmt.Fprintln(w, "Precompute and phase are communication-free; each mixer costs two")
	fmt.Fprintln(w, "all-to-alls. Pairwise pays ~2(K−1) synchronization rounds per exchange")
	fmt.Fprintln(w, "where the direct transpose pays 2 — the gap the paper measures in Fig. 5.")
	return nil
}
