package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit plus
// the expected report markers.
func TestRun(t *testing.T) {
	defer func(n int, d []int, e int) { nQubits, depths, evalsPerP = n, d, e }(nQubits, depths, evalsPerP)
	nQubits, depths, evalsPerP = 8, []int{1, 2}, 30

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"LABS n=8:",
		"optimal energy",
		"E(optimized)",
		"random-guess baseline",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
