// LABS: the workload the paper scales to 40 qubits (Figs. 3–5). This
// example studies how QAOA solution quality on the Low Autocorrelation
// Binary Sequences problem improves with circuit depth p — the
// "high-depth QAOA" regime the simulator is built for — using the
// one-line problem helper of Listing 2.
//
//	go run ./examples/labs
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits   = 14
	depths    = []int{1, 2, 4, 8}
	evalsPerP = 60
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nQubits
	terms := qokit.LABSTerms(n)
	optE, _ := qokit.LABSOptimalEnergy(n)
	fmt.Fprintf(w, "LABS n=%d: %d polynomial terms, optimal energy %d (merit factor %.3f)\n",
		n, len(terms), optE, qokit.MeritFactor(n, optE))

	// One simulator instance; the precomputed diagonal is reused for
	// every depth and every optimizer evaluation below.
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{
		// LABS energies are integers < 2^16, so the diagonal can be
		// stored as uint16 codes — the paper's §V-B memory trick.
		Quantize: true,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\n%2s  %12s  %12s  %10s  %7s\n", "p", "E(TQA)", "E(optimized)", "overlap", "evals")
	for _, p := range depths {
		gamma, beta := qokit.TQAInit(p, 0.7)
		r0, err := sim.SimulateQAOA(gamma, beta)
		if err != nil {
			return err
		}
		tqaEnergy := r0.Expectation()

		g, b, energy, evals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: evalsPerP * p})
		if err != nil {
			return err
		}
		r, err := sim.SimulateQAOA(g, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%2d  %12.4f  %12.4f  %10.4g  %7d\n", p, tqaEnergy, energy, r.Overlap(), evals)
	}
	fmt.Fprintf(w, "\nrandom-guess baseline: E[uniform] = %.2f; optimum %d\n",
		meanCost(sim.CostDiagonal()), optE)
	fmt.Fprintln(w, "(expectation decreases and overlap grows with depth — the regime where")
	fmt.Fprintln(w, " precomputing the diagonal pays off most, since every extra layer reuses it)")
	return nil
}

func meanCost(diag []float64) float64 {
	var s float64
	for _, c := range diag {
		s += c
	}
	return s / float64(len(diag))
}
