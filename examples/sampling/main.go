// Sampling and time-to-solution: QAOA's hardware output is a stream of
// measured bitstrings, and the quantity that decides quantum advantage
// on LABS is how many shots (× circuit depth) it takes to see an
// optimal sequence — compared against how many flips a classical
// heuristic needs (§I, §VII; companion Ref. [6]). This example runs
// the whole comparison at laptop scale: simulate, sample shots,
// estimate the energy from finite shots, and race the shot-based
// time-to-solution against simulated annealing.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits      = 12
	depth        = 8
	interpEvals  = 100
	shotSizes    = []int{100, 1000, 10000}
	annealBudget = 30000
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n, p := nQubits, depth
	terms := qokit.LABSTerms(n)
	optE, _ := qokit.LABSOptimalEnergy(n)

	sim, err := qokit.NewSimulator(n, terms, qokit.Options{FusedMixer: true})
	if err != nil {
		return err
	}
	gamma, beta, energy, evals, err := qokit.OptimizeParametersInterp(sim, p, interpEvals)
	if err != nil {
		return err
	}
	res, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	overlap := res.Overlap()
	fmt.Fprintf(w, "LABS n=%d: INTERP-optimized p=%d QAOA (%d evaluations)\n", n, p, evals)
	fmt.Fprintf(w, "  ⟨E⟩ = %.3f (optimum %d), ground-state overlap %.4g\n", energy, optE, overlap)

	// Finite-shot estimates converge to the exact expectation.
	cost := func(x uint64) float64 { return float64(qokit.LABSEnergy(x, n)) }
	exact := res.Expectation()
	fmt.Fprintln(w, "\nshots   estimate ± stderr   (exact", fmt.Sprintf("%.4f)", exact))
	for _, shots := range shotSizes {
		samples, err := qokit.SampleResult(res, shots, 7)
		if err != nil {
			return err
		}
		mean, stderr := qokit.EstimateExpectation(samples, cost)
		fmt.Fprintf(w, "%6d  %8.4f ± %.4f\n", shots, mean, stderr)
	}

	// Quantum time-to-solution: expected shots until an optimal
	// sequence is measured, at 99% confidence.
	shots, err := qokit.SamplesToSolution(overlap, 0.99)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nexpected shots to optimal sequence (99%%): %.1f  (≈ %.0f circuit layers)\n",
		shots, shots*float64(p))

	// Empirical check: sample until the optimum actually appears.
	samples, err := qokit.SampleResult(res, int(4*shots)+1, 11)
	if err != nil {
		return err
	}
	firstHit := -1
	for i, x := range samples {
		if qokit.LABSEnergy(x, n) == optE {
			firstHit = i + 1
			break
		}
	}
	fmt.Fprintf(w, "empirical first optimal sample: shot #%d\n", firstHit)

	// Classical race: simulated-annealing flips to the same optimum.
	steps, err := qokit.StepsToOptimum(func(x uint64) qokit.Walker {
		return qokit.NewLABSWalker(n, x)
	}, n, float64(optE), annealBudget, 13, 100)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "simulated annealing reached E=%d after %d flips\n", optE, steps)
	fmt.Fprintln(w, "\n(the paper's companion runs exactly this comparison at n up to 40 —")
	fmt.Fprintln(w, " enabled by the distributed simulator in this repository's distsim package)")
	return nil
}
