package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit plus
// the expected report markers.
func TestRun(t *testing.T) {
	defer func(n, p, e int, s []int) { nQubits, depth, interpEvals, shotSizes = n, p, e, s }(
		nQubits, depth, interpEvals, shotSizes)
	nQubits, depth, interpEvals, shotSizes = 8, 3, 40, []int{100, 1000}

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"LABS n=8: INTERP-optimized p=3 QAOA",
		"ground-state overlap",
		"expected shots to optimal sequence (99%)",
		"simulated annealing reached",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
