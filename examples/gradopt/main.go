// Gradient-based QAOA optimization: adjoint-mode differentiation
// gives the exact gradient of ⟨γ,β|Ĉ|γ,β⟩ with respect to all 2p
// parameters for ≈ 4 simulations' cost, independent of p — so a
// high-depth optimization that costs Nelder–Mead thousands of full
// simulations costs Adam a few hundred. This example optimizes LABS
// at increasing depth twice, derivative-free versus gradient-based,
// from the identical TQA warm start, and reports energies and
// simulation budgets side by side.
//
//	go run ./examples/gradopt
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits       = 12
	maxDepth      = 8
	nmEvalsPerP   = 80
	adamItersPerP = 40
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nQubits
	terms := qokit.LABSTerms(n)
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LABS n=%d: Nelder–Mead vs Adam over adjoint gradients (TQA warm start)\n", n)
	fmt.Fprintf(w, "(one gradient evaluation ≈ 4 simulations; one NM evaluation = 1 simulation)\n\n")
	fmt.Fprintf(w, "%2s  %12s  %8s  %12s  %10s  %8s\n",
		"p", "E(NM)", "NM sims", "E(Adam)", "Adam evals", "≈sims")

	for p := 1; p <= maxDepth; p *= 2 {
		_, _, eNM, nmEvals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: nmEvalsPerP * p})
		if err != nil {
			return err
		}
		_, _, eAdam, adamEvals, err := qokit.OptimizeParametersAdam(sim, p, qokit.AdamOptions{MaxIter: adamItersPerP * p})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%2d  %12.6f  %8d  %12.6f  %10d  %8d\n",
			p, eNM, nmEvals, eAdam, adamEvals, 4*adamEvals)
	}

	// The evaluation service also serves batch gradient workloads:
	// evaluate the gradient field at several warm-start candidates in
	// one request, fanned across the pool.
	svc, err := qokit.NewLocalService(sim, qokit.ServiceOptions{})
	if err != nil {
		return err
	}
	defer svc.Close()
	dts := []float64{0.5, 0.75, 1.0}
	const pf = 4
	var xs [][]float64
	grads := make([][]float64, len(dts))
	for i, dt := range dts {
		g, b := qokit.TQAInit(pf, dt)
		xs = append(xs, append(g, b...))
		grads[i] = make([]float64, 2*pf)
	}
	energies, err := svc.EnergyGradBatch(context.Background(), xs, nil, grads)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nGradient field at p=4 TQA starts (one batched service request):\n")
	for i := range xs {
		fmt.Fprintf(w, "  dt=%.2f: E=%9.5f  ‖∂E/∂γ‖∞=%8.5f  ‖∂E/∂β‖∞=%8.5f\n",
			dts[i], energies[i], maxAbs(grads[i][:pf]), maxAbs(grads[i][pf:]))
	}
	return nil
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}
