// Gradient-based QAOA optimization: adjoint-mode differentiation
// gives the exact gradient of ⟨γ,β|Ĉ|γ,β⟩ with respect to all 2p
// parameters for ≈ 4 simulations' cost, independent of p — so a
// high-depth optimization that costs Nelder–Mead thousands of full
// simulations costs Adam a few hundred. This example optimizes LABS
// at increasing depth twice, derivative-free versus gradient-based,
// from the identical TQA warm start, and reports energies and
// simulation budgets side by side. Both optimizers — and the batched
// gradient field at the end — drive one registry-backed elastic
// service, so the cost diagonal is precomputed exactly once for the
// whole table.
//
//	go run ./examples/gradopt
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits       = 12
	maxDepth      = 8
	nmEvalsPerP   = 80
	adamItersPerP = 40
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nQubits
	terms := qokit.LABSTerms(n)
	reg := qokit.NewProblemRegistry(qokit.RegistryOptions{})
	key, err := reg.Register(qokit.ProblemSpec{N: n, Terms: terms})
	if err != nil {
		return err
	}
	svc, err := qokit.NewRegistryService(reg, key, qokit.RegistryServiceOptions{})
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()

	fmt.Fprintf(w, "LABS n=%d: Nelder–Mead vs Adam over adjoint gradients (TQA warm start)\n", n)
	fmt.Fprintf(w, "(one gradient evaluation ≈ 4 simulations; one NM evaluation = 1 simulation)\n\n")
	fmt.Fprintf(w, "%2s  %12s  %8s  %12s  %10s  %8s\n",
		"p", "E(NM)", "NM sims", "E(Adam)", "Adam evals", "≈sims")

	for p := 1; p <= maxDepth; p *= 2 {
		g0, b0 := qokit.TQAInit(p, 0.75)
		x0 := append(append([]float64{}, g0...), b0...)
		var simErr error
		nm := qokit.NelderMead(svc.Objective(ctx, &simErr), x0,
			qokit.NMOptions{MaxEvals: nmEvalsPerP * p})
		if simErr != nil {
			return simErr
		}
		adam := qokit.Adam(svc.GradObjective(ctx, &simErr), x0,
			qokit.AdamOptions{MaxIter: adamItersPerP * p})
		if simErr != nil {
			return simErr
		}
		fmt.Fprintf(w, "%2d  %12.6f  %8d  %12.6f  %10d  %8d\n",
			p, nm.F, nm.Evals, adam.F, adam.Evals, 4*adam.Evals)
	}

	// The service also serves batch gradient workloads: evaluate the
	// gradient field at several warm-start candidates in one request,
	// fanned across the pool.
	dts := []float64{0.5, 0.75, 1.0}
	const pf = 4
	var xs [][]float64
	grads := make([][]float64, len(dts))
	for i, dt := range dts {
		g, b := qokit.TQAInit(pf, dt)
		xs = append(xs, append(g, b...))
		grads[i] = make([]float64, 2*pf)
	}
	energies, err := svc.EnergyGradBatch(ctx, xs, nil, grads)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nGradient field at p=4 TQA starts (one batched service request):\n")
	for i := range xs {
		fmt.Fprintf(w, "  dt=%.2f: E=%9.5f  ‖∂E/∂γ‖∞=%8.5f  ‖∂E/∂β‖∞=%8.5f\n",
			dts[i], energies[i], maxAbs(grads[i][:pf]), maxAbs(grads[i][pf:]))
	}
	st := reg.Stats()
	fmt.Fprintf(w, "\n(whole table served from one registered problem: %d diagonal precompute, %d cache hits)\n",
		st.Precomputes, st.Hits)
	return nil
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}
