package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit plus
// the expected report markers.
func TestRun(t *testing.T) {
	defer func(n, d, e, a int) { nQubits, maxDepth, nmEvalsPerP, adamItersPerP = n, d, e, a }(
		nQubits, maxDepth, nmEvalsPerP, adamItersPerP)
	nQubits, maxDepth, nmEvalsPerP, adamItersPerP = 8, 2, 30, 15

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"LABS n=8: Nelder–Mead vs Adam over adjoint gradients",
		"Gradient field at p=4 TQA starts",
		"dt=0.75",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
