// MaxCut with full parameter optimization: the approximation-ratio-
// versus-depth study that motivates high-depth QAOA simulation (the
// paper cites p ≥ 12 as the regime where QAOA becomes competitive on
// 3-regular MaxCut). One simulator instance serves every depth — the
// precomputed diagonal is what makes the ~10³ objective evaluations
// below cheap.
//
//	go run ./examples/maxcutopt
package main

import (
	"fmt"
	"log"

	"qokit"
)

func main() {
	n, degree := 14, 3
	g, err := qokit.RandomRegular(n, degree, 7)
	if err != nil {
		log.Fatal(err)
	}
	terms := qokit.MaxCutTerms(g)
	best, _, err := qokit.MaxCutBrute(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxCut on a random %d-regular graph: n=%d, |E|=%d, optimal cut %d\n",
		degree, n, g.NumEdges(), best)

	sim, err := qokit.NewSimulator(n, terms, qokit.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%2s  %10s  %8s  %9s  %6s\n", "p", "⟨cut⟩", "ratio", "overlap", "evals")
	totalEvals := 0
	for p := 1; p <= 8; p *= 2 {
		gamma, beta, energy, evals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: 80 * p})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.SimulateQAOA(gamma, beta)
		if err != nil {
			log.Fatal(err)
		}
		// f(x) = −cut(x), so the expected cut is −energy.
		ratio := -energy / float64(best)
		fmt.Printf("%2d  %10.4f  %8.4f  %9.4g  %6d\n", p, -energy, ratio, res.Overlap(), evals)
		totalEvals += evals
	}
	fmt.Printf("\n%d total objective evaluations against one precomputed diagonal;\n", totalEvals)
	fmt.Println("a gate-based simulator would have recompiled and replayed the phase")
	fmt.Println("operator's CX ladders for every one of them (see cmd/qaoabench opt).")
}
