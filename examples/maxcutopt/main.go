// MaxCut with full parameter optimization: the approximation-ratio-
// versus-depth study that motivates high-depth QAOA simulation (the
// paper cites p ≥ 12 as the regime where QAOA becomes competitive on
// 3-regular MaxCut). One simulator instance serves every depth — the
// precomputed diagonal is what makes the ~10³ objective evaluations
// below cheap.
//
//	go run ./examples/maxcutopt
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"qokit"
)

var (
	nQubits    = 14
	maxDepth   = 8
	evalsPerP  = 80
	graphSeed  = int64(7)
	nodeDegree = 3
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n, degree := nQubits, nodeDegree
	g, err := qokit.RandomRegular(n, degree, graphSeed)
	if err != nil {
		return err
	}
	terms := qokit.MaxCutTerms(g)
	best, _, err := qokit.MaxCutBrute(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "MaxCut on a random %d-regular graph: n=%d, |E|=%d, optimal cut %d\n",
		degree, n, g.NumEdges(), best)

	sim, err := qokit.NewSimulator(n, terms, qokit.Options{})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\n%2s  %10s  %8s  %9s  %6s\n", "p", "⟨cut⟩", "ratio", "overlap", "evals")
	totalEvals := 0
	for p := 1; p <= maxDepth; p *= 2 {
		gamma, beta, energy, evals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: evalsPerP * p})
		if err != nil {
			return err
		}
		res, err := sim.SimulateQAOA(gamma, beta)
		if err != nil {
			return err
		}
		// f(x) = −cut(x), so the expected cut is −energy.
		ratio := -energy / float64(best)
		fmt.Fprintf(w, "%2d  %10.4f  %8.4f  %9.4g  %6d\n", p, -energy, ratio, res.Overlap(), evals)
		totalEvals += evals
	}
	fmt.Fprintf(w, "\n%d total objective evaluations against one precomputed diagonal;\n", totalEvals)
	fmt.Fprintln(w, "a gate-based simulator would have recompiled and replayed the phase")
	fmt.Fprintln(w, "operator's CX ladders for every one of them (see cmd/qaoabench opt).")
	return nil
}
