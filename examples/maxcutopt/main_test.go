package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the example at a reduced size: clean exit plus
// the expected report markers.
func TestRun(t *testing.T) {
	defer func(n, d, e int) { nQubits, maxDepth, evalsPerP = n, d, e }(nQubits, maxDepth, evalsPerP)
	nQubits, maxDepth, evalsPerP = 8, 2, 30

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"MaxCut on a random 3-regular graph: n=8",
		"optimal cut",
		"total objective evaluations against one precomputed diagonal",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
