package main

import (
	"strings"
	"testing"
)

// TestRun smoke-tests the sweep example at a reduced size: clean exit
// plus the expected report markers.
func TestRun(t *testing.T) {
	defer func(n, g int) { nQubits, gridSize = n, g }(nQubits, gridSize)
	nQubits, gridSize = 8, 8

	var sb strings.Builder
	if err := run(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, marker := range []string{
		"LABS n=8: swept 64-point p=1 landscape",
		"landscape minimum E =",
		"TQA schedules at p=8 in one batch",
		"refined with Nelder–Mead",
	} {
		if !strings.Contains(out, marker) {
			t.Errorf("output missing %q\n---\n%s", marker, out)
		}
	}
}
