// Parameter sweep: batch-evaluating many (γ, β) points against one
// precomputed diagonal through the evaluation service. This is the
// access pattern the paper's precomputation is built for — optimizers
// and landscape scans evaluate thousands of parameter sets against a
// diagonal that is computed exactly once — served here by a FIFO
// request queue over a worker pool in which each worker reuses a
// single state buffer.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"qokit"
)

var (
	nQubits  = 14
	gridSize = 24
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nQubits
	terms := qokit.LABSTerms(n)
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{FusedMixer: true})
	if err != nil {
		return err
	}
	// One service over one shared simulator: every batch and point
	// request below goes through its FIFO queue onto pooled buffers.
	svc, err := qokit.NewLocalService(sim, qokit.ServiceOptions{})
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()

	// Batch 1: the p = 1 energy landscape on a γ × β grid.
	gammas := make([]float64, gridSize)
	betas := make([]float64, gridSize)
	for i := range gammas {
		gammas[i] = math.Pi * float64(i) / float64(gridSize)
		betas[i] = math.Pi / 2 * float64(i) / float64(gridSize)
	}
	points := qokit.SweepGrid(gammas, betas)
	xs := make([][]float64, len(points))
	for i, pt := range points {
		xs[i] = []float64{pt.Gamma[0], pt.Beta[0]}
	}
	energies, err := svc.EnergyBatch(ctx, xs, nil)
	if err != nil {
		return err
	}
	best := qokit.ArgMinEnergies(energies)
	// The overlap of the winning point comes from one direct
	// simulation — cheaper than computing it for the whole grid.
	bestRes, err := sim.SimulateQAOA(points[best].Gamma, points[best].Beta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LABS n=%d: swept %d-point p=1 landscape through the evaluation service\n",
		n, len(points))
	fmt.Fprintf(w, "landscape minimum E = %.4f at γ = %.4f, β = %.4f (overlap %.4g)\n",
		energies[best], points[best].Gamma[0], points[best].Beta[0], bestRes.Overlap())

	// Batch 2: a multi-start depth-p batch — TQA schedules at many
	// time steps, the standard way to seed high-depth optimization.
	const p = 8
	var starts [][]float64
	var dts []float64
	for dt := 0.3; dt <= 1.2; dt += 0.05 {
		g, b := qokit.TQAInit(p, dt)
		starts = append(starts, append(g, b...))
		dts = append(dts, dt)
	}
	res2, err := svc.EnergyBatch(ctx, starts, nil)
	if err != nil {
		return err
	}
	best2 := qokit.ArgMinEnergies(res2)
	fmt.Fprintf(w, "\nswept %d TQA schedules at p=%d in one batch:\n", len(starts), p)
	fmt.Fprintf(w, "best time step dt = %.2f with E = %.4f\n", dts[best2], res2[best2])

	// The same engine then serves the optimizer: OptimizeParameters
	// routes every Nelder–Mead evaluation through a pooled buffer.
	gamma, beta, energy, evals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: 40 * p})
	if err != nil {
		return err
	}
	r, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nrefined with Nelder–Mead (%d evaluations, one reused state buffer):\n", evals)
	fmt.Fprintf(w, "E = %.4f, overlap %.4g\n", energy, r.Overlap())
	fmt.Fprintln(w, "\n(every evaluation above shared the same cost diagonal — the evaluation")
	fmt.Fprintln(w, " service turns the paper's precompute-once design into batch throughput)")
	return nil
}
