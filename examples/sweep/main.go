// Parameter sweep: batch-evaluating many (γ, β) points against one
// precomputed diagonal with the concurrent sweep engine. This is the
// access pattern the paper's precomputation is built for — optimizers
// and landscape scans evaluate thousands of parameter sets against a
// diagonal that is computed exactly once — served here by a worker
// pool in which each worker reuses a single state buffer.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"qokit"
)

var (
	nQubits  = 14
	gridSize = 24
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nQubits
	terms := qokit.LABSTerms(n)
	sim, err := qokit.NewSimulator(n, terms, qokit.Options{FusedMixer: true})
	if err != nil {
		return err
	}
	// One engine over one shared simulator; Overlap asks for the
	// ground-state probability alongside the energy at every point.
	eng := qokit.NewSweepEngine(sim, qokit.SweepOptions{Overlap: true})

	// Batch 1: the p = 1 energy landscape on a γ × β grid.
	gammas := make([]float64, gridSize)
	betas := make([]float64, gridSize)
	for i := range gammas {
		gammas[i] = math.Pi * float64(i) / float64(gridSize)
		betas[i] = math.Pi / 2 * float64(i) / float64(gridSize)
	}
	points := qokit.SweepGrid(gammas, betas)
	res, err := eng.Sweep(points, nil)
	if err != nil {
		return err
	}
	best := qokit.SweepArgMin(res)
	fmt.Fprintf(w, "LABS n=%d: swept %d-point p=1 landscape against one precomputed diagonal\n",
		n, len(points))
	fmt.Fprintf(w, "landscape minimum E = %.4f at γ = %.4f, β = %.4f (overlap %.4g)\n",
		res[best].Energy, points[best].Gamma[0], points[best].Beta[0], res[best].Overlap)

	// Batch 2: a multi-start depth-p batch — TQA schedules at many
	// time steps, the standard way to seed high-depth optimization.
	const p = 8
	var starts []qokit.SweepPoint
	var dts []float64
	for dt := 0.3; dt <= 1.2; dt += 0.05 {
		g, b := qokit.TQAInit(p, dt)
		starts = append(starts, qokit.SweepPoint{Gamma: g, Beta: b})
		dts = append(dts, dt)
	}
	res2, err := eng.Sweep(starts, nil)
	if err != nil {
		return err
	}
	best2 := qokit.SweepArgMin(res2)
	fmt.Fprintf(w, "\nswept %d TQA schedules at p=%d in one batch:\n", len(starts), p)
	fmt.Fprintf(w, "best time step dt = %.2f with E = %.4f (overlap %.4g)\n",
		dts[best2], res2[best2].Energy, res2[best2].Overlap)

	// The same engine then serves the optimizer: OptimizeParameters
	// routes every Nelder–Mead evaluation through a pooled buffer.
	gamma, beta, energy, evals, err := qokit.OptimizeParameters(sim, p, qokit.NMOptions{MaxEvals: 40 * p})
	if err != nil {
		return err
	}
	r, err := sim.SimulateQAOA(gamma, beta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nrefined with Nelder–Mead (%d evaluations, one reused state buffer):\n", evals)
	fmt.Fprintf(w, "E = %.4f, overlap %.4g\n", energy, r.Overlap())
	fmt.Fprintln(w, "\n(every evaluation above shared the same cost diagonal — the sweep")
	fmt.Fprintln(w, " engine turns the paper's precompute-once design into batch throughput)")
	return nil
}
