// Parameter sweep: batch-evaluating many (γ, β) points against one
// precomputed diagonal through the evaluation service. This is the
// access pattern the paper's precomputation is built for — optimizers
// and landscape scans evaluate thousands of parameter sets against a
// diagonal that is computed exactly once. Here the problem is
// registered once in a problem registry and served by an elastic
// service: the worker pool grows from observed queue backlog while the
// landscape batch is in flight and decays back to its floor afterward,
// and every evaluator the pool builds shares the registry's single
// cached diagonal.
//
//	go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"runtime"

	"qokit"
)

var (
	nQubits  = 14
	gridSize = 24
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	n := nQubits
	terms := qokit.LABSTerms(n)

	// Register the problem once; the diagonal is precomputed on the
	// first evaluator build and cached for every build after it.
	reg := qokit.NewProblemRegistry(qokit.RegistryOptions{})
	key, err := reg.Register(qokit.ProblemSpec{N: n, Terms: terms})
	if err != nil {
		return err
	}
	svc, err := qokit.NewRegistryService(reg, key, qokit.RegistryServiceOptions{
		Simulator: qokit.Options{FusedMixer: true},
		Elastic: qokit.ElasticOptions{
			MinWorkers: 1,
			MaxWorkers: runtime.GOMAXPROCS(0),
		},
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()

	// Batch 1: the p = 1 energy landscape on a γ × β grid. The batch
	// floods the FIFO queue, so the elastic pool scales up from its
	// one-worker floor while it drains.
	gammas := make([]float64, gridSize)
	betas := make([]float64, gridSize)
	for i := range gammas {
		gammas[i] = math.Pi * float64(i) / float64(gridSize)
		betas[i] = math.Pi / 2 * float64(i) / float64(gridSize)
	}
	points := qokit.SweepGrid(gammas, betas)
	xs := make([][]float64, len(points))
	for i, pt := range points {
		xs[i] = []float64{pt.Gamma[0], pt.Beta[0]}
	}
	energies, err := svc.EnergyBatch(ctx, xs, nil)
	if err != nil {
		return err
	}
	grew := svc.LiveWorkers()
	best := qokit.ArgMinEnergies(energies)
	// The overlap of the winning point comes from one outputs request —
	// cheaper than computing it for the whole grid.
	bestOuts, err := svc.EvalOutputs(ctx, xs[best], qokit.OutputSpec{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "LABS n=%d: swept %d-point p=1 landscape through the elastic service\n",
		n, len(points))
	fmt.Fprintf(w, "landscape minimum E = %.4f at γ = %.4f, β = %.4f (overlap %.4g)\n",
		energies[best], points[best].Gamma[0], points[best].Beta[0], bestOuts.Overlap)
	fmt.Fprintf(w, "pool scaled to %d workers for the batch (floor 1, ceiling %d)\n",
		grew, runtime.GOMAXPROCS(0))

	// Batch 2: a multi-start depth-p batch — TQA schedules at many
	// time steps, the standard way to seed high-depth optimization.
	const p = 8
	var starts [][]float64
	var dts []float64
	for dt := 0.3; dt <= 1.2; dt += 0.05 {
		g, b := qokit.TQAInit(p, dt)
		starts = append(starts, append(g, b...))
		dts = append(dts, dt)
	}
	res2, err := svc.EnergyBatch(ctx, starts, nil)
	if err != nil {
		return err
	}
	best2 := qokit.ArgMinEnergies(res2)
	fmt.Fprintf(w, "\nswept %d TQA schedules at p=%d in one batch:\n", len(starts), p)
	fmt.Fprintf(w, "best time step dt = %.2f with E = %.4f\n", dts[best2], res2[best2])

	// The same service then serves the optimizer: every Nelder–Mead
	// evaluation goes through the queue onto a pooled state buffer.
	var simErr error
	g0, b0 := qokit.TQAInit(p, dts[best2])
	nm := qokit.NelderMead(svc.Objective(ctx, &simErr),
		append(g0, b0...), qokit.NMOptions{MaxEvals: 40 * p})
	if simErr != nil {
		return simErr
	}
	outs, err := svc.EvalOutputs(ctx, nm.X, qokit.OutputSpec{})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nrefined with Nelder–Mead (%d evaluations through the service):\n", nm.Evals)
	fmt.Fprintf(w, "E = %.4f, overlap %.4g\n", nm.F, outs.Overlap)
	st := reg.Stats()
	fmt.Fprintf(w, "\n(every evaluation above shared one cached diagonal: %d precompute, %d registry hits\n",
		st.Precomputes, st.Hits)
	fmt.Fprintln(w, " — the registry turns the paper's precompute-once design into batch throughput)")
	return nil
}
