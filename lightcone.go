package qokit

import (
	"qokit/internal/lightcone"
)

// LightConeSimulator is the light-cone MaxCut evaluator: instead of one
// 2^n statevector it simulates, for every edge, only the radius-p
// neighborhood that can influence that edge's cut expectation — exact
// for QAOA depth p ≤ the configured radius — and dedups isomorphic
// neighborhoods so random-regular instances collapse to a handful of
// unique simulations. Problem size is bounded by the cone size (degree
// and radius), not the vertex count: thousand-vertex 3-regular MaxCut
// at p = 2 runs in seconds where the statevector path caps out near
// n ≈ 30. It serves the same Energy/EnergyGrad/Caps contract as
// Simulator, so optimizers, SweepEngine-style loops, and Service pools
// drive it unchanged.
type LightConeSimulator = lightcone.Engine

// LightConeOptions configures a LightConeSimulator (cone radius — the
// maximum exact QAOA depth — fan-out worker count, per-cone backend,
// and the cone-size guard).
type LightConeOptions = lightcone.Options

// LightConeStats reports the cone decomposition of one instance:
// edge count, unique cone classes after isomorphism dedup, the dedup
// hit rate, and the largest cone's qubit count.
type LightConeStats = lightcone.Stats

// NewLightConeSimulator builds the light-cone evaluator for unweighted
// MaxCut on g. Energies and gradients match NewSimulator with
// MaxCutTerms(g) to floating-point accuracy for depths p ≤ opts.Radius.
func NewLightConeSimulator(g Graph, opts LightConeOptions) (*LightConeSimulator, error) {
	return lightcone.New(g, opts)
}

// NewWeightedLightConeSimulator is NewLightConeSimulator for weighted
// MaxCut on an explicit edge list over vertices 0..n−1.
func NewWeightedLightConeSimulator(n int, edges []WeightedEdge, opts LightConeOptions) (*LightConeSimulator, error) {
	return lightcone.NewWeighted(n, edges, opts)
}
